"""Instrumentation tests: the shared helpers, cache counters, and the
differential guarantee that tracing/metrics never change answers."""

from __future__ import annotations

import sqlite3

import pytest

from repro.backend import SqlCqaEngine
from repro.constraints.conflict_graph import build_conflict_graph
from repro.constraints.denial import fd_as_denial
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.cqa.hypergraph_cqa import DenialCqaEngine
from repro.incremental import IncrementalCqaEngine
from repro.obs import (
    REGISTRY,
    MetricsRegistry,
    observe_cache,
    observe_query,
    trace,
)
from repro.prefsql import PrefSqlCqaEngine
from repro.priorities.builders import priority_from_ranking
from repro.query.evaluator import ContextCache
from repro.query.parser import parse_query
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.relational.sqlite_io import save_database

SCHEMA = RelationSchema("Mgr", ["Name", "Dept", "Salary:number"])
ROWS = [("Mary", "RD", 40), ("Mary", "IT", 20), ("John", "RD", 10)]
FDS = [FunctionalDependency.parse("Name -> Dept, Salary", "Mgr")]
CLOSED = "EXISTS d, s . Mgr(Mary, d, s) AND s > 30"
OPEN = "EXISTS d . Mgr(x, d, s)"

ALL_FAMILIES = [
    Family.REP,
    Family.LOCAL,
    Family.SEMI_GLOBAL,
    Family.GLOBAL,
    Family.COMMON,
]


def _instance() -> RelationInstance:
    return RelationInstance.from_values(SCHEMA, ROWS)


def _priority(instance: RelationInstance):
    graph = build_conflict_graph(instance, FDS)
    return priority_from_ranking(graph, lambda row: row["Salary"])


def _run_untraced(build):
    """Execute with metrics disabled and no tracer installed."""
    REGISTRY.enabled = False
    try:
        return build()
    finally:
        REGISTRY.enabled = True


def _run_traced(build):
    """Execute with metrics enabled inside an active trace."""
    with trace() as tracer:
        result = build()
    assert tracer.root.children, "instrumented run recorded no spans"
    return result


class TestObserveQuery:
    def test_records_route_counter_and_latency(self):
        registry = MetricsRegistry()
        observe_query("sql", "sqlite", "Rep", 0.01, registry=registry)
        snapshot = registry.snapshot()
        assert snapshot["repro_queries_total"]["values"] == {
            "sql,sqlite,Rep": 1.0
        }
        assert snapshot["repro_query_seconds"]["values"]["sqlite"]["count"] == 1
        assert "repro_fallbacks_total" not in snapshot

    def test_fallback_reason_split_off_route_label(self):
        registry = MetricsRegistry()
        observe_query(
            "prefsql", "fallback: query not rewritable", "G-Rep", 0.2,
            registry=registry,
        )
        snapshot = registry.snapshot()
        assert snapshot["repro_queries_total"]["values"] == {
            "prefsql,fallback,G-Rep": 1.0
        }
        assert snapshot["repro_fallbacks_total"]["values"] == {
            "query not rewritable": 1.0
        }

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        observe_query("cqa", "indexed", "Rep", 0.1, registry=registry)
        observe_cache("answer", "hit", registry=registry)
        assert registry.snapshot() == {}


class TestCacheCounters:
    def test_context_cache_counts_and_mirrors_to_registry(self):
        instance = _instance()
        rows = sorted(instance.rows, key=repr)
        cache = ContextCache(max_entries=1)
        first, second = frozenset(rows[:1]), frozenset(rows[1:2])
        cache.context_for(first)   # miss
        cache.context_for(first)   # hit
        cache.context_for(second)  # miss + eviction of `first`
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 2, "evictions": 1,
        }
        events = REGISTRY.snapshot()["repro_cache_events_total"]["values"]
        assert events["context,miss"] == 2.0
        assert events["context,hit"] == 1.0
        assert events["context,eviction"] == 1.0

    def test_incremental_engine_repair_cache_counts(self):
        instance = _instance()
        engine = IncrementalCqaEngine(
            instance, FDS, _priority(instance).edges, Family.GLOBAL
        )
        engine.answer(CLOSED)
        engine.answer(CLOSED)
        stats = engine._cache.stats()
        assert set(stats) >= {"hits", "misses", "evictions"}
        assert stats["misses"] > 0
        events = REGISTRY.snapshot()["repro_cache_events_total"]["values"]
        assert events.get("component_repair,miss", 0) > 0


class TestQueryMetrics:
    def test_engine_answer_lands_in_route_counter(self):
        instance = _instance()
        engine = CqaEngine(instance, FDS, _priority(instance), Family.GLOBAL)
        engine.answer(CLOSED)
        values = REGISTRY.snapshot()["repro_queries_total"]["values"]
        assert any(key.startswith("cqa,") for key in values)
        latency = REGISTRY.snapshot()["repro_query_seconds"]["values"]
        assert sum(entry["count"] for entry in latency.values()) == 1


class TestDifferential:
    """Traced + metered runs must return bit-identical answers."""

    @pytest.mark.parametrize("family", ALL_FAMILIES, ids=str)
    def test_in_memory_engine_all_families(self, family):
        def run():
            instance = _instance()
            engine = CqaEngine(instance, FDS, _priority(instance), family)
            return (
                engine.answer(CLOSED),
                engine.certain_answers(parse_query(OPEN)),
            )

        untraced_closed, untraced_open = _run_untraced(run)
        traced_closed, traced_open = _run_traced(run)
        assert traced_closed == untraced_closed
        assert traced_open.certain == untraced_open.certain
        assert traced_open.possible == untraced_open.possible

    def test_incremental_engine(self):
        def run():
            instance = _instance()
            engine = IncrementalCqaEngine(
                instance, FDS, _priority(instance).edges, Family.GLOBAL
            )
            return engine.answer(CLOSED), engine.certain_answers(
                parse_query(OPEN)
            )

        untraced_closed, untraced_open = _run_untraced(run)
        traced_closed, traced_open = _run_traced(run)
        assert traced_closed == untraced_closed
        assert traced_open.certain == untraced_open.certain
        assert traced_open.possible == untraced_open.possible

    def test_sql_engine(self):
        def run():
            connection = sqlite3.connect(":memory:")
            save_database(Database.single(_instance()), connection, FDS)
            with SqlCqaEngine(connection, FDS) as engine:
                return (
                    engine.answer(CLOSED),
                    engine.certain_answers(parse_query(OPEN)),
                )

        untraced_closed, untraced_open = _run_untraced(run)
        traced_closed, traced_open = _run_traced(run)
        assert traced_closed == untraced_closed
        assert traced_open.certain == untraced_open.certain
        assert traced_open.possible == untraced_open.possible

    def test_prefsql_engine(self):
        def run():
            instance = _instance()
            connection = sqlite3.connect(":memory:")
            save_database(Database.single(instance), connection, FDS)
            edges = _priority(instance).dominance_rows()
            with PrefSqlCqaEngine(
                connection, FDS, edges, Family.GLOBAL
            ) as engine:
                return engine.answer(CLOSED)

        assert _run_traced(run) == _run_untraced(run)

    def test_denial_engine(self):
        def run():
            denials = [fd_as_denial(fd, SCHEMA) for fd in FDS]
            engine = DenialCqaEngine(_instance(), denials)
            return engine.answer(CLOSED)

        assert _run_traced(run) == _run_untraced(run)
