"""Unit tests for the typed value domains."""

import pytest

from repro.exceptions import TypeMismatchError
from repro.relational.domain import (
    AttributeType,
    infer_type,
    values_comparable,
)


class TestAttributeTypeValidate:
    def test_name_accepts_strings(self):
        assert AttributeType.NAME.validate("Mary") == "Mary"

    def test_name_accepts_empty_string(self):
        assert AttributeType.NAME.validate("") == ""

    def test_name_rejects_integers(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.NAME.validate(3)

    def test_number_accepts_naturals(self):
        assert AttributeType.NUMBER.validate(0) == 0
        assert AttributeType.NUMBER.validate(41) == 41

    def test_number_rejects_negative(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.NUMBER.validate(-1)

    def test_number_rejects_strings(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.NUMBER.validate("3")

    def test_number_rejects_booleans(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.NUMBER.validate(True)


class TestAttributeTypeParse:
    def test_parse_number(self):
        assert AttributeType.NUMBER.parse("42") == 42

    def test_parse_number_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.NUMBER.parse("4x")

    def test_parse_number_rejects_negative(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.NUMBER.parse("-4")

    def test_parse_name_is_identity(self):
        assert AttributeType.NAME.parse("R&D") == "R&D"


class TestOrdering:
    def test_numbers_are_ordered(self):
        assert AttributeType.NUMBER.is_ordered

    def test_names_are_not_ordered(self):
        assert not AttributeType.NAME.is_ordered

    def test_values_comparable_only_for_two_naturals(self):
        assert values_comparable(1, 2)
        assert not values_comparable(1, "a")
        assert not values_comparable("a", "b")
        assert not values_comparable(True, 1)


class TestInferType:
    def test_infer_number(self):
        assert infer_type(7) is AttributeType.NUMBER

    def test_infer_name(self):
        assert infer_type("x") is AttributeType.NAME

    def test_infer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            infer_type(True)

    def test_infer_rejects_float(self):
        with pytest.raises(TypeMismatchError):
            infer_type(1.5)
