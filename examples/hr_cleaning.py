#!/usr/bin/env python3
"""Timestamp-driven cleaning of an HR database (Algorithm 1 in anger).

A payroll relation accumulates updates that are never purged, so the
key ``Employee → Grade, Salary`` is violated by stale rows.  Tuple
timestamps orient conflicts toward the newest information — except for
a batch import whose timestamps are unreliable and tie.

The example contrasts:

* one-shot ETL cleaning (keeps/contingency policies),
* Algorithm 1 (iterative winnow) under the same priority,
* the full set of common repairs C-Rep when ties leave choices open,
* preferred consistent answers to payroll audit queries.

Run:  python examples/hr_cleaning.py
"""

from repro import CqaEngine, Family, FunctionalDependency, RelationInstance, RelationSchema
from repro.baselines.cleaning import UnresolvedPolicy, clean_database
from repro.constraints.conflict_graph import build_conflict_graph
from repro.core.cleaning import all_cleaning_results, clean
from repro.priorities.builders import priority_from_timestamps
from repro.relational.rows import sorted_rows


def main() -> None:
    schema = RelationSchema(
        "Payroll", ["Employee", "Grade", "Salary:number", "Day:number"]
    )
    # Day is the (simplified) modification timestamp; the two Hana rows
    # came from a batch import that reused one timestamp.
    rows = [
        ("Ada", "L5", 120, 10),
        ("Ada", "L6", 140, 30),   # promotion: newer, should win
        ("Bob", "L4", 95, 12),
        ("Bob", "L4", 90, 5),     # stale salary correction
        ("Hana", "L5", 115, 20),  # batch import, same day...
        ("Hana", "L5", 125, 20),  # ...twice, with different salaries
    ]
    instance = RelationInstance.from_values(schema, rows)
    fds = [FunctionalDependency.parse("Employee -> Grade, Salary", "Payroll")]

    graph = build_conflict_graph(instance, fds)
    print(f"{len(instance)} payroll rows, {graph.edge_count} conflicts")

    timestamps = {row: float(row["Day"]) for row in graph.vertices}
    priority = priority_from_timestamps(graph, timestamps)
    print(
        f"Timestamps orient {len(priority.edges)}/{graph.edge_count} conflicts "
        f"(the Hana tie stays open)\n"
    )

    # One-shot ETL cleaning.
    keep = clean_database(priority, UnresolvedPolicy.KEEP)
    contingency = clean_database(priority, UnresolvedPolicy.CONTINGENCY)
    print("One-shot cleaning, KEEP policy:")
    print(f"  kept {len(keep.kept)} rows, consistent: {keep.is_consistent}")
    print("One-shot cleaning, CONTINGENCY policy:")
    print(
        f"  kept {len(contingency.kept)} rows, "
        f"{len(contingency.contingency)} rows parked for review"
    )

    # Algorithm 1: iterative, always produces a repair.
    repaired = clean(priority)
    print("\nAlgorithm 1 output (one common repair):")
    for row in sorted_rows(repaired):
        print(f"  {row}")

    common = all_cleaning_results(priority)
    print(f"\nC-Rep: {len(common)} common repairs (the Hana tie forks them)")

    # Audit queries under preferred consistent answering.
    engine = CqaEngine(instance, fds, priority, Family.COMMON)
    audits = {
        "Ada is at L6":
            "EXISTS s, d . Payroll(Ada, 'L6', s, d)",
        "Bob earns 95":
            "EXISTS g, d . Payroll(Bob, g, 95, d)",
        "Hana earns at least 115":
            "EXISTS g, s, d . Payroll(Hana, g, s, d) AND s >= 115",
        "Hana earns exactly 125":
            "EXISTS g, d . Payroll(Hana, g, 125, d)",
    }
    print("\nAudit answers over C-Rep (true/false/undetermined):")
    for label, query in audits.items():
        print(f"  {label:28s} -> {engine.answer(query).verdict.value}")

    # The undetermined Hana salary is exactly the open tie; listing the
    # disputed certain answers shows what a reviewer must resolve.
    open_answers = engine.certain_answers(
        "EXISTS g, d . Payroll(Hana, g, s, d)", ("s",)
    )
    print(f"\nHana's possible salaries: {sorted(v for (v,) in open_answers.possible)}")
    print(f"Hana's certain salaries:  {sorted(v for (v,) in open_answers.certain)}")


if __name__ == "__main__":
    main()
