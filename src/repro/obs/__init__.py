"""repro.obs — unified metrics registry and query-lifecycle tracing.

One process-wide :data:`REGISTRY` collects counters, gauges, and latency
histograms from every layer (engines, broker, locks, shard pool, HTTP
front end); :mod:`repro.obs.tracing` adds opt-in per-thread span trees
for ``repro query --profile``.  Both are dependency-free and near-free
when disabled.

The helpers below define the metric families every layer shares, so
label vocabularies ("route", "engine", "cache") stay consistent and
exposition (``GET /metrics``) needs no per-module knowledge.
"""

from __future__ import annotations

from typing import Optional

from .recorder import FlightRecorder, QueryRecord, RECORDER
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    REGISTRY,
    query_histogram,
)
from .tracing import (
    Span,
    Tracer,
    annotate,
    current_tracer,
    format_tree,
    install_tracer,
    new_trace_id,
    restore_tracer,
    span,
    trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "QueryRecord",
    "RECORDER",
    "REGISTRY",
    "Span",
    "Tracer",
    "annotate",
    "current_tracer",
    "format_tree",
    "install_tracer",
    "new_trace_id",
    "restore_tracer",
    "span",
    "trace",
    "observe_query",
    "observe_cache",
    "observe_process",
    "query_histogram",
]


def observe_query(
    engine: str,
    route: str,
    family: str,
    seconds: float,
    registry: MetricsRegistry = REGISTRY,
) -> None:
    """Record one answered query: route counter + latency histogram.

    ``route`` is the engine's own label ("prefsql", "sqlite",
    "witness-index", "indexed", "naive", or "fallback: <reason>"); the
    fallback reason is split into its own counter so the route label set
    stays small.  The same call feeds the flight recorder's open capture
    (if any), so recorded queries carry the serving engine and route.
    """
    RECORDER.note(engine=engine, route=route, family=family, seconds=seconds)
    if not registry.enabled:
        return
    reason: Optional[str] = None
    if route.startswith("fallback"):
        _, _, detail = route.partition(":")
        reason = detail.strip() or "unspecified"
        route = "fallback"
    registry.counter(
        "repro_queries_total",
        "Queries answered, by engine, route, and repair family",
        labels=("engine", "route", "family"),
    ).labels(engine=engine, route=route, family=family).inc()
    if reason is not None:
        registry.counter(
            "repro_fallbacks_total",
            "Pushdown fallbacks to in-memory evaluation, by reason",
            labels=("reason",),
        ).labels(reason=reason).inc()
    query_histogram(registry).labels(route=route).observe(seconds)


def observe_cache(
    cache: str,
    event: str,
    amount: int = 1,
    registry: MetricsRegistry = REGISTRY,
) -> None:
    """Record a cache event: ``event`` is "hit", "miss", or "eviction".

    ``cache`` names the family: "answer" (broker result cache),
    "context" (evaluator contexts), or "component_repair" (incremental
    per-component repair sets).
    """
    if not registry.enabled:
        return
    registry.counter(
        "repro_cache_events_total",
        "Cache hits, misses, and evictions by cache family",
        labels=("cache", "event"),
    ).labels(cache=cache, event=event).inc(amount)


def _resident_bytes() -> Optional[int]:
    """Current RSS in bytes, or ``None`` where /proc is unavailable."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        import resource

        return pages * resource.getpagesize()
    except (OSError, ValueError, IndexError, ImportError):
        try:
            import resource

            # ru_maxrss is the peak, in KiB on Linux / bytes on macOS;
            # a peak beats nothing when /proc is missing.
            peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            import sys

            return peak if sys.platform == "darwin" else peak * 1024
        except Exception:
            return None


def observe_process(registry: MetricsRegistry = REGISTRY) -> None:
    """Refresh the process-level saturation gauges.

    Called on every ``/metrics`` and ``/stats`` scrape (pull-model
    sampling: the gauges are only as fresh as the last scrape, which is
    exactly what Prometheus-style collection expects).  Exposes resident
    set size, per-generation GC collection counts, and live thread
    count — the signals that tell a load sweep *why* tails grew
    (memory pressure, collector churn, thread pile-up).
    """
    if not registry.enabled:
        return
    import gc
    import threading as _threading

    registry.gauge(
        "repro_process_threads",
        "Live threads in the serving process",
    ).set(_threading.active_count())
    collections = registry.gauge(
        "repro_process_gc_collections",
        "Garbage collections completed, by generation",
        labels=("generation",),
    )
    for generation, stats in enumerate(gc.get_stats()):
        collections.labels(generation=str(generation)).set(
            stats.get("collections", 0)
        )
    rss = _resident_bytes()
    if rss is not None:
        registry.gauge(
            "repro_process_resident_bytes",
            "Resident set size of the serving process",
        ).set(rss)
