"""Preference-aware SQL pushdown: winnow-in-SQLite over oriented edges.

The backend layer (:mod:`repro.backend`) pushes *classical* certain
answers into SQLite but is preference-blind — any declared priority
used to force in-memory repair streaming.  This layer closes that gap
for the paper's actual subject, prioritized repair families:

* :mod:`repro.prefsql.edges` materializes the conflict graph and the
  oriented dominance edges of a priority into side tables
  (``_repro_conflicts``, ``_repro_edges``) next to the mirrored data;
* :mod:`repro.prefsql.winnow` compiles the winnow operator ω≻ as SQL
  anti-joins over the edge table, iterates Algorithm 1 to a fixpoint
  with staged ``CREATE TEMP TABLE`` passes (the clean fragment), and
  derives per-family survivor tables — the rows whose conflict class
  belongs to ``L``/``S``/``G``/``C``-Rep — entirely server-side;
* :mod:`repro.prefsql.engine` exposes :class:`PrefSqlCqaEngine`, which
  composes those survivor tables with the backend's NOT-EXISTS
  rewriting so safe conjunctive queries over prioritized databases are
  answered bit-identically to :class:`~repro.cqa.engine.CqaEngine`
  without materializing a single repair.
"""

from repro.prefsql.edges import (
    SIDE_CONFLICTS,
    SIDE_EDGES,
    ensure_side_tables,
    materialize_conflicts,
    materialize_edges,
)
from repro.prefsql.engine import PrefSqlCqaEngine
from repro.prefsql.winnow import (
    WinnowFixpoint,
    build_survivor_table,
    has_unresolved_group,
    iterate_winnow,
    winnow_pass,
)

__all__ = [
    "PrefSqlCqaEngine",
    "SIDE_CONFLICTS",
    "SIDE_EDGES",
    "WinnowFixpoint",
    "build_survivor_table",
    "ensure_side_tables",
    "has_unresolved_group",
    "iterate_winnow",
    "materialize_conflicts",
    "materialize_edges",
    "winnow_pass",
]
