"""The winnow operator ω≻ (Chomicki, TODS 2003; paper Section 2.2).

``winnow(priority, rows)`` returns the tuples of ``rows`` not dominated
by any other tuple of ``rows``.  Algorithm 1 applies winnow repeatedly
to build a clean database.

Two implementations are provided: the quadratic literal reading of the
definition and the indexed one that consults the priority's dominator
index (the default).  The ablation benchmark ABL4 compares them.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, Set

from repro.priorities.priority import Priority
from repro.relational.rows import Row


def winnow(priority: Priority, rows: AbstractSet[Row]) -> FrozenSet[Row]:
    """ω≻(rows): the ≻-undominated tuples of ``rows`` (indexed)."""
    rows = rows if isinstance(rows, (set, frozenset)) else frozenset(rows)
    return frozenset(
        row for row in rows if not (priority.dominators_of(row) & rows)
    )


def winnow_naive(priority: Priority, rows: AbstractSet[Row]) -> FrozenSet[Row]:
    """ω≻(rows) by the literal all-pairs definition (ablation baseline)."""
    rows = frozenset(rows)
    kept: Set[Row] = set()
    for candidate in rows:
        if not any(
            priority.dominates(other, candidate)
            for other in rows
            if other != candidate
        ):
            kept.add(candidate)
    return frozenset(kept)
