"""Span-based query-lifecycle tracing.

A :class:`Trace` is a tree of :class:`Span` objects, each recording a
stage name, wall-clock duration, free-form attributes, and children.
Engines open spans around their lifecycle stages (parse → plan → route
decision → edges/winnow → SQL or stream execution → shard fan-out and
merge); the CLI's ``repro query --profile`` renders the finished tree.

Tracing is *opt-in per thread*: :func:`trace` installs a collector in a
``threading.local`` slot, and the :func:`span` helper used throughout
the engines checks that slot first.  When no collector is installed the
helper returns a shared no-op context manager — a single attribute read
plus a tuple-free ``with`` block, cheap enough that the bench guard
keeps the disabled path within 5% of fully uninstrumented code.
Instrumented code never imports anything but :func:`span` and
:func:`annotate`, so the instrumentation cannot change answers.

Exports: :meth:`Span.to_dict` / :meth:`Span.from_dict` (a JSON-ready
round trip, the wire format workers use to ship shard span trees home)
and :func:`format_tree` (the pretty printer behind ``--profile``).

Every span carries a stable id and a wall-clock start timestamp.  Ids
are unique per process (a random prefix drawn at import time plus a
counter), so trees grafted together from several worker processes never
collide; they survive the dict round trip, which lets a retained trace
reference the same span across serializations.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: Per-process prefix keeping span ids unique across the worker pool
#: (each pooled process re-imports this module and draws its own).
_ID_PREFIX = uuid.uuid4().hex[:6]
_ID_COUNTER = itertools.count(1)


def _next_span_id() -> str:
    return f"{_ID_PREFIX}-{next(_ID_COUNTER):x}"


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (one per recorded query)."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed stage: name, attributes, duration, and child spans."""

    __slots__ = (
        "name", "attributes", "children", "start", "duration",
        "span_id", "started_at",
    )

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List[Span] = []
        self.start = 0.0
        self.duration = 0.0
        self.span_id = _next_span_id()
        #: Wall-clock (epoch) start; 0.0 for hand-built spans.
        self.started_at = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested representation (durations in seconds)."""
        entry: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "duration_s": round(self.duration, 9),
        }
        if self.started_at:
            entry["started_at"] = round(self.started_at, 6)
        if self.attributes:
            entry["attributes"] = dict(self.attributes)
        if self.children:
            entry["children"] = [child.to_dict() for child in self.children]
        return entry

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output.

        The original ``span_id`` is preserved, so a tree shipped across
        a process boundary keeps the ids its worker assigned.
        """
        span = cls(str(payload["name"]), payload.get("attributes"))
        span.duration = float(payload.get("duration_s", 0.0))
        span.started_at = float(payload.get("started_at", 0.0))
        if "span_id" in payload:
            span.span_id = str(payload["span_id"])
        span.children = [
            cls.from_dict(child) for child in payload.get("children", ())
        ]
        return span


class Tracer:
    """Collects one span tree for the thread it is installed on."""

    __slots__ = ("root", "_stack")

    def __init__(self, name: str = "query") -> None:
        self.root = Span(name)
        self.root.start = time.perf_counter()
        self.root.started_at = time.time()
        self._stack: List[Span] = [self.root]

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        child = Span(name, attributes)
        child.start = time.perf_counter()
        child.started_at = time.time()
        self._stack[-1].children.append(child)
        self._stack.append(child)
        try:
            yield child
        finally:
            child.duration = time.perf_counter() - child.start
            self._stack.pop()

    def annotate(self, **attributes: Any) -> None:
        self._stack[-1].attributes.update(attributes)

    def graft(self, span: Span) -> None:
        """Attach an already-finished span tree under the open span.

        This is how shard span trees shipped home from worker processes
        land beneath the parent's ``shard-fan-out`` span.
        """
        self._stack[-1].children.append(span)

    def finish(self) -> Span:
        self.root.duration = time.perf_counter() - self.root.start
        return self.root


class _NoopSpan:
    """Shared do-nothing context manager for the untraced fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP = _NoopSpan()
_STATE = threading.local()


def current_tracer() -> Optional[Tracer]:
    """The tracer installed on this thread, or None."""
    return getattr(_STATE, "tracer", None)


def install_tracer(tracer: Tracer) -> Optional[Tracer]:
    """Install ``tracer`` on this thread; returns the previous one.

    Low-level hook for collectors (the flight recorder) that cannot use
    the :func:`trace` context manager; pair with :func:`restore_tracer`.
    """
    previous = getattr(_STATE, "tracer", None)
    _STATE.tracer = tracer
    return previous


def restore_tracer(previous: Optional[Tracer]) -> None:
    """Undo :func:`install_tracer`."""
    _STATE.tracer = previous


def span(name: str, **attributes: Any):
    """Open a child span if tracing is active, else a shared no-op.

    This is the only call instrumented code makes on the hot path; with
    no tracer installed it costs one ``getattr`` and returns a shared
    singleton.
    """
    tracer = getattr(_STATE, "tracer", None)
    if tracer is None:
        return _NOOP
    return tracer.span(name, **attributes)


def annotate(**attributes: Any) -> None:
    """Attach attributes to the innermost open span (no-op untraced)."""
    tracer = getattr(_STATE, "tracer", None)
    if tracer is not None:
        tracer.annotate(**attributes)


@contextmanager
def trace(name: str = "query") -> Iterator[Tracer]:
    """Install a tracer on this thread for the duration of the block.

    Nested calls stack: the previous tracer (if any) is restored on
    exit.  The yielded tracer's root span is finished on exit, so the
    caller reads ``tracer.root`` afterwards.
    """
    previous = getattr(_STATE, "tracer", None)
    tracer = Tracer(name)
    _STATE.tracer = tracer
    try:
        yield tracer
    finally:
        tracer.finish()
        _STATE.tracer = previous


def format_tree(root: Span, indent: str = "") -> str:
    """Pretty-print a span tree for terminal output.

    Durations render in the most readable unit (µs/ms/s); attributes
    append as ``key=value`` pairs after the timing.
    """
    lines: List[str] = []

    def _render(node: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        duration = node.duration
        if duration >= 1.0:
            timing = f"{duration:.3f}s"
        elif duration >= 0.001:
            timing = f"{duration * 1e3:.3f}ms"
        else:
            timing = f"{duration * 1e6:.1f}µs"
        attrs = "".join(
            f" {key}={value}" for key, value in sorted(node.attributes.items())
        )
        if is_root:
            lines.append(f"{node.name}  [{timing}]{attrs}")
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(f"{prefix}{connector}{node.name}  [{timing}]{attrs}")
            child_prefix = prefix + ("   " if is_last else "│  ")
        for position, child in enumerate(node.children):
            _render(
                child,
                child_prefix,
                position == len(node.children) - 1,
                False,
            )

    _render(root, indent, True, True)
    return "\n".join(lines)
