"""Ablation benchmarks ABL1-ABL4 (design choices called out in DESIGN.md).

ABL1  G-optimality via Proposition 5 (≪-maximality over the repair
      pool) vs the doubly exponential definitional replacement search.
ABL2  C-Rep enumeration with residual-set memoization vs the naive
      choice tree.
ABL3  Repair enumeration: Bron–Kerbosch with pivoting + component
      factoring vs the unfactored / pivotless variants.
ABL4  Winnow: dominator-indexed vs literal quadratic implementation.
"""

import sys

if not __package__:
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import pytest

from benchmarks._cli import run_pytest_module, sizes

from repro.core.cleaning import all_cleaning_results
from repro.core.optimality import (
    is_globally_optimal,
    is_globally_optimal_by_definition,
)
from repro.priorities.winnow import winnow, winnow_naive
from repro.repairs.enumerate import enumerate_repairs

from benchmarks.workloads import (
    chain_workload,
    duplicated_workload,
    random_workload,
    sample_candidate,
)

# --------------------------------------------------------------------------
# ABL1: global-optimality checking strategies
# --------------------------------------------------------------------------


ABL1_SIZES = sizes(full=[8, 10, 12], smoke=[6])
ABL2_SIZES = sizes(full=[4, 6, 8], smoke=[3])
ABL3_SIZE = sizes(full=18, smoke=10)
ABL4_SIZES = sizes(full=[64, 128, 256], smoke=[24])


@pytest.mark.parametrize("length", ABL1_SIZES)
def test_abl1_global_check_prop5(benchmark, length):
    _, graph, priority = chain_workload(length)
    candidate = sample_candidate(graph)
    repairs = list(enumerate_repairs(graph))
    result = benchmark(is_globally_optimal, candidate, priority, repairs)
    assert result in (True, False)


@pytest.mark.parametrize("length", ABL1_SIZES)
def test_abl1_global_check_definition(benchmark, length):
    _, graph, priority = chain_workload(length)
    candidate = sample_candidate(graph)
    result = benchmark(is_globally_optimal_by_definition, candidate, priority)
    # Cross-check against the Prop 5 implementation.
    assert result == is_globally_optimal(candidate, priority)


# --------------------------------------------------------------------------
# ABL2: C-Rep enumeration strategies
# --------------------------------------------------------------------------


@pytest.mark.parametrize("groups", ABL2_SIZES)
def test_abl2_crep_memoized(benchmark, groups):
    _, _, priority = duplicated_workload(groups)
    results = benchmark(all_cleaning_results, priority, True)
    assert len(results) == 1  # challenger priority is decisive


@pytest.mark.parametrize("groups", ABL2_SIZES)
def test_abl2_crep_naive(benchmark, groups):
    _, _, priority = duplicated_workload(groups)
    results = benchmark(all_cleaning_results, priority, False)
    assert len(results) == 1


# --------------------------------------------------------------------------
# ABL3: repair-enumeration strategies
# --------------------------------------------------------------------------


@pytest.mark.parametrize(
    "factor,pivot",
    [(True, True), (True, False), (False, True), (False, False)],
    ids=["factored+pivot", "factored", "pivot", "naive"],
)
def test_abl3_enumeration_variants(benchmark, factor, pivot):
    _, graph, _ = random_workload(ABL3_SIZE)

    def run():
        return sum(1 for _ in enumerate_repairs(graph, factor, pivot))

    count = benchmark(run)
    assert count >= 1


# --------------------------------------------------------------------------
# ABL4: winnow implementations
# --------------------------------------------------------------------------


@pytest.mark.parametrize("n", ABL4_SIZES)
def test_abl4_winnow_indexed(benchmark, n):
    _, graph, priority = random_workload(n, density=0.8)
    result = benchmark(winnow, priority, graph.vertices)
    assert result


@pytest.mark.parametrize("n", ABL4_SIZES)
def test_abl4_winnow_naive(benchmark, n):
    _, graph, priority = random_workload(n, density=0.8)
    result = benchmark(winnow_naive, priority, graph.vertices)
    assert result == winnow(priority, graph.vertices)


if __name__ == "__main__":
    sys.exit(run_pytest_module(__file__, __doc__))
