"""Uniform command-line surface for the benchmark suite.

Every ``benchmarks/bench_*.py`` accepts the same two flags:

``--smoke``
    A seconds-long, correctness-focused configuration for CI: sweeps
    shrink to their smallest sizes and (for the pytest-benchmark
    modules) timing is disabled, so only the assertions run.
``--seed``
    Seeds whatever randomness the workload uses (random instances,
    sampled repair candidates, shuffled insertion orders), making a
    run reproducible and letting CI vary the draw.

The standalone scripts (``bench_backend``, ``bench_incremental``,
``bench_evaluator``) consume the parsed flags directly.  The
pytest-benchmark modules re-execute themselves through ``pytest``; the
chosen values travel through environment variables so the module
re-imported by pytest picks them up when computing its parametrized
sweep sizes via :func:`sizes`.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

#: Environment toggles the pytest-benchmark modules read at import time.
SMOKE_ENV = "REPRO_BENCH_SMOKE"
SEED_ENV = "REPRO_BENCH_SEED"

#: Directory the ``BENCH_<name>.json`` result files land in (default:
#: the working directory, so CI can archive them as artifacts).
RESULTS_ENV = "REPRO_BENCH_RESULTS"

DEFAULT_SEED = 7


def bench_parser(doc: str) -> argparse.ArgumentParser:
    """The shared ``--smoke`` / ``--seed`` parser; add extra flags freely."""
    first_line = (doc or "benchmark").strip().splitlines()[0]
    parser = argparse.ArgumentParser(description=first_line)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, seconds-long CI configuration (assertions only)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help=f"workload randomness seed (default: ${SEED_ENV} or {DEFAULT_SEED})",
    )
    return parser


def smoke_active() -> bool:
    return bool(os.environ.get(SMOKE_ENV))


def sizes(full, smoke):
    """Pick a sweep parametrization based on the smoke toggle."""
    return smoke if smoke_active() else full


def bench_seed(override: "int | None" = None) -> int:
    """The effective workload seed: flag, then environment, then default."""
    if override is not None:
        return override
    value = os.environ.get(SEED_ENV)
    return int(value) if value else DEFAULT_SEED


def apply_seed(args) -> int:
    """Resolve a standalone script's ``--seed``, export it, return it.

    Exporting through ``$REPRO_BENCH_SEED`` lets shared workload
    builders (:mod:`benchmarks.workloads`) pick the value up without
    threading it through every call.  The smoke flag is exported the
    same way so :func:`emit_result` records the run configuration.
    """
    seed = bench_seed(args.seed)
    os.environ[SEED_ENV] = str(seed)
    if getattr(args, "smoke", False):
        os.environ[SMOKE_ENV] = "1"
    return seed


def query_latency_summary() -> dict:
    """p50/p95 query latencies per route from the process registry.

    Engines record every answered query into the shared
    ``repro_query_seconds`` histogram family, so any bench that runs
    queries in-process accumulates a latency distribution for free;
    this folds it into the result file.  Empty when no queries ran (or
    :mod:`repro` is not importable).
    """
    try:
        from repro.obs import REGISTRY
    except ImportError:  # pragma: no cover - repro not on sys.path
        return {}
    family = REGISTRY.snapshot().get("repro_query_seconds")
    if not family:
        return {}
    return {
        route or "all": {
            "count": entry["count"],
            "p50_s": entry["p50"],
            "p95_s": entry["p95"],
        }
        for route, entry in family["values"].items()
    }


def emit_result(module_file: str, payload: dict) -> str:
    """Write a ``BENCH_<name>.json`` result file recording this run.

    ``<name>`` is the bench module's stem without the ``bench_`` prefix
    (``bench_evaluator.py`` → ``BENCH_evaluator.json``).  The payload is
    wrapped with run metadata — wall-clock timestamp, python version,
    smoke/seed configuration, and the p50/p95 per-route query latencies
    the metrics registry observed during the run — so successive CI
    runs accumulate a machine-readable perf trajectory.  Returns the
    file path.
    """
    stem = os.path.splitext(os.path.basename(module_file))[0]
    name = stem[len("bench_"):] if stem.startswith("bench_") else stem
    directory = os.environ.get(RESULTS_ENV, ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    record = {
        "bench": name,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "smoke": smoke_active(),
        "seed": bench_seed(),
        "query_latency": query_latency_summary(),
        **payload,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_pytest_module(module_file: str, doc: str, argv=None) -> int:
    """argparse front-end for a pytest-benchmark module.

    Parses the uniform flags, exports them through the environment, and
    re-runs the module under pytest — with ``--benchmark-disable`` in
    smoke mode (one plain call per case, assertions still enforced) and
    ``--benchmark-only`` otherwise.  Every run emits its
    ``BENCH_<name>.json`` result file (exit status plus duration; the
    detailed timings live in pytest-benchmark's own output).
    """
    args = bench_parser(doc).parse_args(argv)
    if args.smoke:
        os.environ[SMOKE_ENV] = "1"
    if args.seed is not None:
        os.environ[SEED_ENV] = str(args.seed)
    import pytest

    pytest_args = [module_file, "-q", "-p", "no:cacheprovider"]
    pytest_args.append("--benchmark-disable" if args.smoke else "--benchmark-only")
    started = time.perf_counter()
    exit_code = int(pytest.main(pytest_args))
    emit_result(
        module_file,
        {
            "mode": "pytest-benchmark",
            "exit_code": exit_code,
            "duration_s": round(time.perf_counter() - started, 3),
        },
    )
    return exit_code
