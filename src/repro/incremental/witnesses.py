"""Witness indexes: incremental support sets for conjunctive queries.

A *safe conjunctive* query — an existential block over a conjunction of
positive relational atoms and comparisons, with every variable occurring
in some atom — is monotone, and its truth in a repair is decided by its
**witnesses**: valuations of the variables whose supporting rows all lie
in the repair.  Because every satisfying valuation is grounded through
the atoms, the query holds in a repair ``r'`` iff some witness *support*
(the set of rows matched by the atoms) is contained in ``r'``.

The engine therefore never evaluates such a query per repair.  It keeps,
per query, a :class:`WitnessIndex` mapping answer tuples to their
support sets over the *current* instance and maintains it under updates
semi-naively:

* ``apply_delete(row)`` drops the supports containing the row (via a
  row → support reverse index);
* ``apply_insert(row)`` joins only the valuations that use the new row
  in at least one atom.

Containment of a support in a repair then factors through connected
components (a repair is one fragment per component), which is what
:mod:`repro.incremental.engine` exploits for component-scoped answering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.query.ast import (
    And,
    Atom,
    COMPARISON_OPS,
    Comparison,
    Const,
    EQUALITY_OPS,
    Exists,
    Formula,
    TrueFormula,
)
from repro.relational.domain import Value, values_comparable
from repro.relational.rows import Row

Support = FrozenSet[Row]
AnswerTuple = Tuple[Value, ...]


@dataclass(frozen=True)
class ConjunctivePlan:
    """A safe conjunctive query decomposed for witness enumeration."""

    answer_variables: Tuple[str, ...]
    atoms: Tuple[Atom, ...]
    comparisons: Tuple[Comparison, ...]


def conjunctive_plan(
    formula: Formula, answer_variables: Tuple[str, ...] = ()
) -> Optional[ConjunctivePlan]:
    """Extract a witness plan, or ``None`` if the query is out of scope.

    In scope: (nested) ``EXISTS`` blocks over a conjunction of positive
    atoms, comparisons and TRUE, where every variable — quantified or
    free — occurs in at least one atom (safety; an unsafe variable would
    range over the repair's active domain, which is not support-local).
    """
    body = formula
    while isinstance(body, Exists):
        body = body.body
    atoms: List[Atom] = []
    comparisons: List[Comparison] = []
    parts = body.parts if isinstance(body, And) else (body,)
    for part in parts:
        if isinstance(part, Atom):
            atoms.append(part)
        elif isinstance(part, Comparison):
            comparisons.append(part)
        elif isinstance(part, TrueFormula):
            continue
        else:
            return None
    if not atoms:
        return None
    atom_variables = frozenset().union(*(atom.free_variables() for atom in atoms))
    if not body.free_variables() <= atom_variables:
        return None
    if not frozenset(answer_variables) <= atom_variables:
        return None
    return ConjunctivePlan(tuple(answer_variables), tuple(atoms), tuple(comparisons))


def _compare(op: str, left: Value, right: Value) -> bool:
    if op not in EQUALITY_OPS and not values_comparable(left, right):
        return False
    return COMPARISON_OPS[op](left, right)


def _resolve(term, binding: Mapping[str, Value]) -> Optional[Value]:
    if isinstance(term, Const):
        return term.value
    return binding.get(term.name)


def _unify(
    atom: Atom, row: Row, binding: Dict[str, Value]
) -> Optional[List[str]]:
    """Bind the atom's variables against ``row``; returns the new names.

    Returns ``None`` (binding untouched) on mismatch.
    """
    if len(row.values) != len(atom.terms):
        return None
    introduced: List[str] = []
    for term, value in zip(atom.terms, row.values):
        if isinstance(term, Const):
            if term.value != value:
                break
        elif term.name in binding:
            if binding[term.name] != value:
                break
        else:
            binding[term.name] = value
            introduced.append(term.name)
    else:
        return introduced
    for name in introduced:
        del binding[name]
    return None


def enumerate_witnesses(
    plan: ConjunctivePlan,
    rows_by_relation: Mapping[str, Set[Row]],
    forced: Optional[Tuple[int, Row]] = None,
) -> Iterator[Tuple[AnswerTuple, Support]]:
    """All (answer tuple, support) witnesses over the given rows.

    ``forced`` pins one atom position to one row — the semi-naive delta
    step: every witness *using* a row appears with the row forced at
    some position, so the union over positions is exactly the new
    witness set after inserting that row.
    """
    checked: List[List[Comparison]] = [[] for _ in plan.atoms]
    remaining = list(plan.comparisons)

    def assign_checks(prefix_vars: Set[str], index: int) -> None:
        for comparison in list(remaining):
            names = comparison.free_variables()
            if names <= prefix_vars:
                checked[index].append(comparison)
                remaining.remove(comparison)

    seen: Set[str] = set()
    for index, atom in enumerate(plan.atoms):
        seen |= atom.free_variables()
        assign_checks(seen, index)
    # Comparisons over unbound variables cannot occur (safety), but a
    # comparison between two constants lands on the last atom.
    for comparison in remaining:  # pragma: no cover - constant folding
        checked[-1].append(comparison)

    binding: Dict[str, Value] = {}
    support: List[Row] = []

    def recurse(index: int) -> Iterator[Tuple[AnswerTuple, Support]]:
        if index == len(plan.atoms):
            answer = tuple(binding[name] for name in plan.answer_variables)
            yield answer, frozenset(support)
            return
        atom = plan.atoms[index]
        if forced is not None and forced[0] == index:
            candidates = (forced[1],) if forced[1].relation == atom.relation else ()
        else:
            candidates = tuple(rows_by_relation.get(atom.relation, ()))
        for row in candidates:
            introduced = _unify(atom, row, binding)
            if introduced is None:
                continue
            if all(
                _compare(
                    c.op, _resolve(c.left, binding), _resolve(c.right, binding)
                )
                for c in checked[index]
            ):
                support.append(row)
                yield from recurse(index + 1)
                support.pop()
            for name in introduced:
                del binding[name]

    yield from recurse(0)


class WitnessIndex:
    """Answer → supports map for one plan, maintained under updates."""

    def __init__(
        self,
        plan: ConjunctivePlan,
        rows_by_relation: Mapping[str, Set[Row]],
    ) -> None:
        self.plan = plan
        self._supports: Dict[AnswerTuple, Set[Support]] = {}
        self._by_row: Dict[Row, Set[Tuple[AnswerTuple, Support]]] = {}
        for answer, support in enumerate_witnesses(plan, rows_by_relation):
            self._add(answer, support)

    def _add(self, answer: AnswerTuple, support: Support) -> None:
        bucket = self._supports.setdefault(answer, set())
        if support in bucket:
            return
        bucket.add(support)
        for row in support:
            self._by_row.setdefault(row, set()).add((answer, support))

    def apply_insert(
        self, row: Row, rows_by_relation: Mapping[str, Set[Row]]
    ) -> None:
        """Account for ``row`` having been inserted (post-insert rows)."""
        for index, atom in enumerate(self.plan.atoms):
            if atom.relation != row.relation:
                continue
            for answer, support in enumerate_witnesses(
                self.plan, rows_by_relation, forced=(index, row)
            ):
                self._add(answer, support)

    def apply_delete(self, row: Row) -> None:
        """Drop every witness whose support uses ``row``."""
        for answer, support in self._by_row.pop(row, ()):
            bucket = self._supports.get(answer)
            if bucket is None or support not in bucket:
                continue
            bucket.discard(support)
            if not bucket:
                del self._supports[answer]
            for other in support:
                if other != row:
                    entries = self._by_row.get(other)
                    if entries is not None:
                        entries.discard((answer, support))
                        if not entries:
                            del self._by_row[other]

    # Read API -----------------------------------------------------------------

    def answers(self) -> List[AnswerTuple]:
        return list(self._supports)

    def supports_for(self, answer: AnswerTuple) -> FrozenSet[Support]:
        return frozenset(self._supports.get(answer, ()))

    @property
    def witness_count(self) -> int:
        return sum(len(bucket) for bucket in self._supports.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WitnessIndex({len(self._supports)} answers, "
            f"{self.witness_count} witnesses)"
        )
