"""The SQLite-pushed certain-answer engine.

:class:`SqlCqaEngine` mirrors :class:`~repro.cqa.engine.CqaEngine`'s
``answer()`` / ``certain_answers()`` / ``sql_certain_answers()`` surface
but evaluates rewritable queries *inside* SQLite (see
:mod:`repro.backend.rewrite`): no conflict-graph construction, no repair
streaming, one SQL statement per answer set.  That opens the workload
the in-memory engines cannot reach — file-backed instances with orders
of magnitude more rows than fit a per-repair evaluation loop.

Queries outside the rewritable fragment (and every query when priority
edges are declared — this engine's rewriting is preference-blind; the
:class:`~repro.prefsql.engine.PrefSqlCqaEngine` layer handles declared
priorities) are routed to a lazily constructed
in-memory :class:`CqaEngine` over the loaded database; the routing
outcome of the last call is recorded in :attr:`last_route` and
:meth:`explain` exposes the decision without running anything.

Because the rewriting quantifies over *all* repairs, its answers are
exactly the classic (``Rep``) certain answers — and with no declared
priority every preferred family coincides with ``Rep`` (winnow keeps
everything, no repair dominates another), so any ``family`` argument is
honoured.

Result-count caveat: pushed answers report ``repairs_considered`` (and
``satisfying``) as 0 — the whole point is that no repair was ever
materialized.
"""

from __future__ import annotations

import sqlite3
import time
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.analysis.model import make_diagnostic
from repro.backend.rewrite import RewriteDecision, analyze_query
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.answers import ClosedAnswer, OpenAnswers, Verdict
from repro.cqa.engine import CqaEngine
from repro.exceptions import QueryError
from repro.obs import annotate, observe_query
from repro.obs import span as obs_span
from repro.query.ast import Formula
from repro.query.parser import parse_query
from repro.query.sql import sql_to_formula
from repro.query.validate import check_against_schema
from repro.relational.sqlite_io import load_database, load_schema

# The catalogued diagnostic renders the historical reason string
# verbatim (metric labels and tests pin it); keeping the module-level
# name preserves the old import surface.
_PRIORITY_DIAGNOSTIC = make_diagnostic("RA302")
_PRIORITY_REASON = _PRIORITY_DIAGNOSTIC.message


class SqlCqaEngine:
    """Certain-answer engine over a SQLite-persisted database.

    ``source`` is a database file path or an open connection;
    ``relation_names`` widens the visible schema to tables created
    outside repro.  ``priority`` accepts the same ``(winner, loser)``
    row-pair edges as :class:`CqaEngine` — any non-empty priority forces
    the in-memory fallback path.
    """

    def __init__(
        self,
        source: Union[str, Path, sqlite3.Connection],
        dependencies: Sequence[FunctionalDependency],
        priority: Iterable = (),
        family: Family = Family.REP,
        relation_names: Optional[Iterable[str]] = None,
    ) -> None:
        self._own = not isinstance(source, sqlite3.Connection)
        self._connection = sqlite3.connect(source) if self._own else source
        self.dependencies = tuple(dependencies)
        self.family = family
        self.priority_edges = tuple(priority or ())
        self._relation_names = tuple(relation_names) if relation_names else None
        self.schema = load_schema(self._connection, self._relation_names)
        self._fallback_engine: Optional[CqaEngine] = None
        # Formulas are hashable, so explain() followed by answer()/
        # certain_answers() (the session routing pattern) and repeated
        # queries compile once.
        self._decision_cache: Dict[
            Tuple[Formula, Optional[Tuple[str, ...]]], RewriteDecision
        ] = {}
        #: Routing of the most recent call: ``"sqlite"`` or
        #: ``"fallback: <reason>"``.
        self.last_route: Optional[str] = None

    # Lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Close the connection (no-op when one was passed in)."""
        if self._own:
            self._connection.close()

    def __enter__(self) -> "SqlCqaEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # Routing -----------------------------------------------------------------

    def _to_formula(self, query: Union[str, Formula]) -> Formula:
        with obs_span("parse"):
            formula = parse_query(query) if isinstance(query, str) else query
            return check_against_schema(formula, self.schema)

    def explain(
        self,
        query: Union[str, Formula],
        variables: Optional[Sequence[str]] = None,
        family: Optional[Family] = None,
    ) -> RewriteDecision:
        """The routing decision for ``query``, without executing it.

        ``family`` is accepted for interface parity with the
        preference-aware engine; this engine's decisions are
        family-independent (no priority, all families coincide).
        """
        formula = self._to_formula(query)
        return self._decide(formula, variables)

    def _decide(
        self, formula: Formula, variables: Optional[Sequence[str]]
    ) -> RewriteDecision:
        if self.priority_edges:
            return RewriteDecision(
                None, _PRIORITY_REASON, diagnostics=(_PRIORITY_DIAGNOSTIC,)
            )
        key = (formula, tuple(variables) if variables is not None else None)
        decision = self._decision_cache.get(key)
        if decision is None:
            decision = analyze_query(
                formula, self.schema, self.dependencies, variables
            )
            self._decision_cache[key] = decision
        return decision

    def _fallback(self) -> CqaEngine:
        if self._fallback_engine is None:
            database = load_database(self._connection, self._relation_names)
            self._fallback_engine = CqaEngine(
                database, self.dependencies, self.priority_edges, self.family
            )
        return self._fallback_engine

    # Closed queries ----------------------------------------------------------

    def answer(
        self, query: Union[str, Formula], family: Optional[Family] = None
    ) -> ClosedAnswer:
        """Three-valued verdict of a closed query (Definition 3)."""
        started = time.perf_counter()
        family = family or self.family
        formula = self._to_formula(query)
        if not formula.is_closed:
            raise QueryError("answer() requires a closed formula")
        with obs_span("route-decision"):
            decision = self._decide(formula, ())
        if decision.plan is None:
            self.last_route = decision.fallback_route
            annotate(route="fallback", reason=decision.reason)
            answer = self._fallback().answer(formula, family)
            observe_query(
                "sql", self.last_route, str(family),
                time.perf_counter() - started,
            )
            return answer
        self.last_route = "sqlite"
        annotate(route="sqlite")
        with obs_span("sql-execute"):
            result = decision.plan.run(self._connection)
        if result.certain:
            verdict = Verdict.TRUE  # true in every repair
        elif result.possible:
            verdict = Verdict.UNDETERMINED  # true in some, false in some
        else:
            verdict = Verdict.FALSE  # true in no repair
        observe_query(
            "sql", "sqlite", str(family), time.perf_counter() - started
        )
        return ClosedAnswer(family, verdict, 0, 0, None, route="sqlite")

    def is_consistently_true(
        self, query: Union[str, Formula], family: Optional[Family] = None
    ) -> bool:
        """Whether the closed query holds in every (preferred) repair."""
        return self.answer(query, family).verdict is Verdict.TRUE

    # Open queries ------------------------------------------------------------

    def certain_answers(
        self,
        query: Union[str, Formula],
        variables: Optional[Tuple[str, ...]] = None,
        family: Optional[Family] = None,
    ) -> OpenAnswers:
        """Certain/possible answer sets of an open query."""
        started = time.perf_counter()
        family = family or self.family
        formula = self._to_formula(query)
        if variables is None:
            variables = tuple(sorted(formula.free_variables()))
        with obs_span("route-decision"):
            decision = self._decide(formula, variables)
        if decision.plan is None:
            self.last_route = decision.fallback_route
            annotate(route="fallback", reason=decision.reason)
            answers = self._fallback().certain_answers(
                formula, variables, family
            )
            observe_query(
                "sql", self.last_route, str(family),
                time.perf_counter() - started,
            )
            return answers
        self.last_route = "sqlite"
        annotate(route="sqlite")
        with obs_span("sql-execute"):
            result = decision.plan.run(self._connection)
        observe_query(
            "sql", "sqlite", str(family), time.perf_counter() - started
        )
        return OpenAnswers(
            family,
            tuple(variables),
            result.certain,
            result.possible,
            0,
            route="sqlite",
        )

    def sql_certain_answers(
        self, sql: str, family: Optional[Family] = None
    ) -> OpenAnswers:
        """Certain answers for a conjunctive SQL query."""
        formula, variables = sql_to_formula(sql, self.schema)
        return self.certain_answers(formula, variables, family)

    # Diagnostics -------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Snapshot of the engine's configuration and last routing."""
        return {
            "backend": "sqlite",
            "relations": len(self.schema),
            "dependencies": len(self.dependencies),
            "priority_edges": len(self.priority_edges),
            "family": str(self.family),
            "last_route": self.last_route,
        }
