"""Lifting a tuple priority to a preference on repairs (Proposition 5).

For a priority ``≻`` and repairs ``r1, r2``, repair ``r2`` is *preferred
over* ``r1`` (written ``r1 ≪ r2``) when every tuple lost in moving from
``r1`` to ``r2`` is dominated by some tuple gained::

    ∀ x ∈ r1 \\ r2 . ∃ y ∈ r2 \\ r1 . y ≻ x

Proposition 5: a repair is globally optimal iff it is ≪-maximal.  The
paper notes this lifting pattern also appears in preferred answer-set
semantics [21] and relative-likelihood orderings [15].

``≪`` need not be transitive; maximality is taken w.r.t. the raw
relation on distinct repairs (on equal repairs it holds vacuously and is
ignored).
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, List, Sequence

from repro.priorities.priority import Priority
from repro.relational.rows import Row

Repair = FrozenSet[Row]


def prefers(priority: Priority, worse: AbstractSet[Row], better: AbstractSet[Row]) -> bool:
    """Whether ``worse ≪ better`` (``better`` preferred over ``worse``).

    Vacuously true when ``worse ⊆ better``; for distinct repairs both
    differences are nonempty (two maximal independent sets are
    incomparable under inclusion), so the quantifier has real force.
    """
    worse = frozenset(worse)
    better = frozenset(better)
    gained = better - worse
    for lost in worse - better:
        if not any(priority.dominates(winner, lost) for winner in gained):
            return False
    return True


def strictly_prefers(
    priority: Priority, worse: AbstractSet[Row], better: AbstractSet[Row]
) -> bool:
    """``worse ≪ better`` for *distinct* sets (false on equal sets)."""
    return frozenset(worse) != frozenset(better) and prefers(priority, worse, better)


def maximal_under_preference(
    priority: Priority, repairs: Sequence[Repair]
) -> List[Repair]:
    """The ≪-maximal elements among ``repairs``.

    By Proposition 5 applied to the full repair set, these are exactly
    the globally optimal repairs.
    """
    return [
        candidate
        for candidate in repairs
        if not any(
            strictly_prefers(priority, candidate, other) for other in repairs
        )
    ]
