"""Span tracer tests: nesting, ordering, no-op fast path, rendering."""

from __future__ import annotations

import pytest

from repro.obs.tracing import (
    Span,
    annotate,
    current_tracer,
    format_tree,
    span,
    trace,
)
from repro.obs import tracing as tracing_module


class TestNoopFastPath:
    def test_span_without_tracer_is_shared_noop(self):
        assert current_tracer() is None
        first = span("anything", key="value")
        second = span("else")
        assert first is second is tracing_module._NOOP
        with first:
            pass  # usable as a context manager, records nothing

    def test_annotate_without_tracer_is_silent(self):
        annotate(route="sqlite")  # must not raise


class TestTraceLifecycle:
    def test_nesting_and_sibling_order(self):
        with trace("query") as tracer:
            with span("parse"):
                pass
            with span("execute", route="sqlite"):
                with span("winnow"):
                    pass
            with span("merge"):
                pass
        root = tracer.root
        assert root.name == "query"
        assert [child.name for child in root.children] == [
            "parse",
            "execute",
            "merge",
        ]
        execute = root.children[1]
        assert execute.attributes == {"route": "sqlite"}
        assert [child.name for child in execute.children] == ["winnow"]

    def test_durations_are_populated(self):
        with trace() as tracer:
            with span("work"):
                pass
        assert tracer.root.duration > 0
        assert tracer.root.children[0].duration > 0
        assert tracer.root.children[0].start >= tracer.root.start

    def test_annotate_targets_innermost_open_span(self):
        with trace() as tracer:
            with span("outer"):
                with span("inner"):
                    annotate(repairs=4)
                annotate(route="indexed")
            annotate(verdict="true")
        outer = tracer.root.children[0]
        assert outer.attributes == {"route": "indexed"}
        assert outer.children[0].attributes == {"repairs": 4}
        assert tracer.root.attributes == {"verdict": "true"}

    def test_exception_still_closes_span(self):
        with pytest.raises(RuntimeError):
            with trace() as tracer:
                with span("doomed"):
                    raise RuntimeError("boom")
        assert tracer.root.children[0].duration > 0
        assert current_tracer() is None

    def test_nested_trace_restores_previous(self):
        with trace("outer") as outer:
            assert current_tracer() is outer
            with trace("inner") as inner:
                assert current_tracer() is inner
                with span("step"):
                    pass
            assert current_tracer() is outer
            # The inner trace collected into its own tree, not ours.
            assert outer.root.children == []
            assert [c.name for c in inner.root.children] == ["step"]
        assert current_tracer() is None


class TestSerialization:
    def test_to_dict_nests(self):
        with trace("query") as tracer:
            with span("execute", route="prefsql"):
                with span("winnow"):
                    pass
        entry = tracer.root.to_dict()
        assert entry["name"] == "query"
        assert entry["duration_s"] > 0
        execute = entry["children"][0]
        assert execute["attributes"] == {"route": "prefsql"}
        assert execute["children"][0]["name"] == "winnow"
        assert "attributes" not in execute["children"][0]

    def test_format_tree_golden(self):
        root = Span("query")
        root.duration = 1.5
        parse = Span("parse")
        parse.duration = 0.002
        execute = Span("execute", {"route": "sqlite"})
        execute.duration = 0.25
        inner = Span("inner")
        inner.duration = 0.0000005
        execute.children.append(inner)
        root.children.extend([parse, execute])
        assert format_tree(root) == (
            "query  [1.500s]\n"
            "├─ parse  [2.000ms]\n"
            "└─ execute  [250.000ms] route=sqlite\n"
            "   └─ inner  [0.5µs]"
        )

    def test_format_tree_sorts_attributes(self):
        root = Span("q", {"b": 2, "a": 1})
        root.duration = 2.0
        assert format_tree(root) == "q  [2.000s] a=1 b=2"
