"""Typed value domains of the paper's data model.

The paper (Section 2) works with two disjoint domains: *uninterpreted
names* ``D`` and *natural numbers* ``N``.  Constants with different names
are different, and the comparison symbols ``<``/``>`` carry their natural
interpretation over ``N`` only.

We model names as Python strings and naturals as non-negative Python
integers.  :class:`AttributeType` tags each attribute with its domain and
provides validation and parsing helpers used by the schema layer and the
CSV loader.
"""

from __future__ import annotations

import enum
from typing import Union

from repro.exceptions import TypeMismatchError

#: A database value: an uninterpreted name (str) or a natural number (int).
Value = Union[str, int]


class AttributeType(enum.Enum):
    """Domain of an attribute: uninterpreted names or natural numbers."""

    NAME = "name"
    NUMBER = "number"

    def validate(self, value: Value) -> Value:
        """Return ``value`` if it belongs to this domain, else raise.

        Booleans are rejected as numbers even though ``bool`` subclasses
        ``int`` — they are almost certainly a caller bug.
        """
        if self is AttributeType.NAME:
            if isinstance(value, str):
                return value
            raise TypeMismatchError(
                f"expected an uninterpreted name (str), got {value!r}"
            )
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(
                f"expected a natural number (int), got {value!r}"
            )
        if value < 0:
            raise TypeMismatchError(
                f"natural numbers are non-negative, got {value!r}"
            )
        return value

    def parse(self, text: str) -> Value:
        """Parse a textual field (e.g. from CSV) into this domain."""
        if self is AttributeType.NAME:
            return text
        try:
            return self.validate(int(text))
        except ValueError as exc:
            raise TypeMismatchError(
                f"cannot parse {text!r} as a natural number"
            ) from exc

    @property
    def is_ordered(self) -> bool:
        """Whether ``<`` and ``>`` are meaningful on this domain."""
        return self is AttributeType.NUMBER


def infer_type(value: Value) -> AttributeType:
    """Infer the domain of a Python value (used by schema inference)."""
    if isinstance(value, bool) or isinstance(value, int):
        if isinstance(value, bool):
            raise TypeMismatchError(f"booleans are not database values: {value!r}")
        return AttributeType.NUMBER
    if isinstance(value, str):
        return AttributeType.NAME
    raise TypeMismatchError(f"unsupported value {value!r}")


def values_comparable(left: Value, right: Value) -> bool:
    """Whether ``<``/``>`` apply to the pair (both must be naturals)."""
    return (
        isinstance(left, int)
        and isinstance(right, int)
        and not isinstance(left, bool)
        and not isinstance(right, bool)
    )
