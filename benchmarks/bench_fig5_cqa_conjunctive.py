"""Figure 5, column "Consistent Answers, conjunctive queries" — F5.cq.

Paper claims: co-NP-complete for Rep (already for conjunctive queries)
and for the preferred families L/S/C even on a single ground atom;
Π²p-complete for G-Rep.  All our solvers are exact, so their running
time tracks the (exponential) preferred-repair space.  The benchmark
sweeps a conjunctive (existential self-join) query and a single ground
atom across the families on chain workloads, plus the G engine on
smaller chains — the Π²p row separates by pulling away fastest.
"""

import sys

if not __package__:
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import pytest

from benchmarks._cli import run_pytest_module, sizes

from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.datagen.generators import CHAIN_FDS
from repro.query.parser import parse_query

from benchmarks.workloads import chain_workload

#: Conjunctive query: two tuples share an A-group (a self-join).
CONJUNCTIVE = parse_query(
    "EXISTS a, b1, b2, c1, c2, d1, d2 . "
    "R(a, b1, c1, d1) AND R(a, b2, c2, d2) AND b1 != b2"
)

SIZES = sizes(full=[10, 14, 18], smoke=[6])
GLOBAL_SIZES = sizes(full=[8, 12, 16], smoke=[6])


@pytest.mark.parametrize("length", SIZES)
@pytest.mark.parametrize(
    "family",
    [Family.REP, Family.LOCAL, Family.SEMI_GLOBAL, Family.COMMON],
    ids=str,
)
def test_conjunctive_cqa_conp_families(benchmark, family, length):
    instance, _, priority = chain_workload(length)
    engine = CqaEngine(instance, CHAIN_FDS, priority, family)
    answer = benchmark(engine.answer, CONJUNCTIVE)
    assert answer.repairs_considered >= 1


@pytest.mark.parametrize("length", GLOBAL_SIZES)
def test_conjunctive_cqa_global_family(benchmark, length):
    instance, _, priority = chain_workload(length)
    engine = CqaEngine(instance, CHAIN_FDS, priority, Family.GLOBAL)
    answer = benchmark(engine.answer, CONJUNCTIVE)
    assert answer.repairs_considered >= 1


@pytest.mark.parametrize("length", SIZES)
def test_single_ground_atom_still_hard(benchmark, length):
    """Theorem 3/4: hardness already holds for one ground atom."""
    from repro.datagen.generators import chain_rows

    instance, _, priority = chain_workload(length)
    first = chain_rows(instance)[0]
    atom = parse_query(
        f"R({first['A']}, {first['B']}, {first['C']}, {first['D']})"
    )
    engine = CqaEngine(instance, CHAIN_FDS, priority, Family.SEMI_GLOBAL)
    answer = benchmark(engine.answer, atom)
    assert answer.verdict.value in ("true", "false", "undetermined")


if __name__ == "__main__":
    sys.exit(run_pytest_module(__file__, __doc__))
