"""Repair checking (the ``B`` problem family of Section 4.1).

For the plain repair family ``Rep`` the check is polynomial (first row
of Figure 5): a candidate ``r'`` is a repair of ``r`` w.r.t. ``F`` iff
it is a consistent subset of ``r`` and every excluded tuple conflicts
with some retained tuple (maximality).
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Sequence

from repro.constraints.conflict_graph import ConflictGraph, build_conflict_graph
from repro.constraints.conflicts import is_consistent
from repro.constraints.fd import FunctionalDependency
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row


def is_repair(
    candidate: AbstractSet[Row],
    instance: RelationInstance,
    dependencies: Sequence[FunctionalDependency],
) -> bool:
    """Definition 1: maximal subset of the instance consistent with F."""
    candidate = frozenset(candidate)
    if not candidate <= instance.rows:
        return False
    if not is_consistent(candidate, dependencies):
        return False
    # Maximality: every excluded tuple must conflict with a kept tuple.
    for excluded in instance.rows - candidate:
        with_one_more = candidate | {excluded}
        if is_consistent(with_one_more, dependencies):
            return False
    return True


def is_repair_on_graph(candidate: AbstractSet[Row], graph: ConflictGraph) -> bool:
    """Graph-level repair check: maximal independent set test (PTIME)."""
    return graph.is_maximal_independent(candidate)


def consistent_subinstance(
    candidate: AbstractSet[Row],
    instance: RelationInstance,
    dependencies: Sequence[FunctionalDependency],
) -> bool:
    """Weaker check: consistent subset (not necessarily maximal)."""
    candidate = frozenset(candidate)
    return candidate <= instance.rows and is_consistent(candidate, dependencies)


def complete_to_repair(
    consistent_seed: AbstractSet[Row], graph: ConflictGraph
) -> frozenset:
    """Extend a consistent (independent) set to some repair containing it.

    Adds remaining non-conflicting vertices greedily in deterministic
    order; the result is a maximal independent set ⊇ seed.  Used by the
    global-optimality witness search and by Theorem 1-style arguments.
    """
    from repro.relational.rows import sorted_rows  # local import avoids cycle

    chosen = set(consistent_seed)
    if not graph.is_independent(chosen):
        raise ValueError("seed set is not conflict-free")
    for vertex in sorted_rows(graph.vertices):
        if vertex in chosen:
            continue
        if not (graph.vicinity(vertex) - {vertex}) & chosen:
            chosen.add(vertex)
    return frozenset(chosen)
