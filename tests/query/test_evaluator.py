"""Unit tests for the model-theoretic evaluator."""

import pytest

from repro.exceptions import QueryBindingError
from repro.query.evaluator import EvaluationContext, answers, evaluate, make_context
from repro.query.parser import parse_query
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema

SCHEMA = RelationSchema("Mgr", ["Name", "Dept", "Salary:number"])
ROWS = RelationInstance.from_values(
    SCHEMA,
    [
        ("Mary", "R&D", 40),
        ("John", "PR", 30),
        ("Eve", "IT", 40),
    ],
)


def holds(text, rows=ROWS, **binding):
    return evaluate(parse_query(text), rows, binding or None)


class TestGroundEvaluation:
    def test_present_fact(self):
        assert holds("Mgr(Mary, 'R&D', 40)")

    def test_absent_fact(self):
        assert not holds("Mgr(Mary, 'R&D', 41)")

    def test_negation(self):
        assert holds("NOT Mgr(Mary, 'IT', 40)")

    def test_comparisons_on_numbers(self):
        assert holds("40 > 30")
        assert holds("30 <= 30")
        assert not holds("30 > 40")

    def test_equality_on_names(self):
        assert holds("Mary = Mary")
        assert holds("Mary != John")

    def test_order_on_names_is_false(self):
        # < is interpreted over the naturals N only (paper Section 2).
        assert not holds("Mary < John")
        assert not holds("John < Mary")

    def test_order_on_mixed_domains_is_false(self):
        assert not holds("Mary < 40")

    def test_connectives(self):
        assert holds("Mgr(Mary, 'R&D', 40) AND 1 < 2")
        assert holds("Mgr(Mary, 'IT', 0) OR Mgr(John, 'PR', 30)")
        assert holds("Mgr(Mary, 'IT', 0) IMPLIES FALSE")


class TestQuantifiers:
    def test_exists(self):
        assert holds("EXISTS d, s . Mgr(Mary, d, s)")

    def test_exists_with_comparison(self):
        assert holds("EXISTS n, d, s . Mgr(n, d, s) AND s > 35")
        assert not holds("EXISTS n, d, s . Mgr(n, d, s) AND s > 45")

    def test_exists_join(self):
        # Two managers share a salary.
        assert holds(
            "EXISTS n1, d1, n2, d2, s . "
            "Mgr(n1, d1, s) AND Mgr(n2, d2, s) AND n1 != n2"
        )

    def test_forall(self):
        assert holds("FORALL n, d, s . Mgr(n, d, s) IMPLIES s >= 30")
        assert not holds("FORALL n, d, s . Mgr(n, d, s) IMPLIES s >= 40")

    def test_forall_over_active_domain(self):
        # Quantification ranges over all values of the instance, not
        # just a column, so a vacuous claim about rows still holds.
        assert holds("FORALL x . Mgr(x, x, x) IMPLIES FALSE")

    def test_exists_unguarded_variable_uses_domain(self):
        assert holds("EXISTS x . x = 40")
        # 41 occurs neither in the instance nor the query's own
        # constants other than the comparison; it *does* occur as a
        # query constant, so the domain includes it.
        assert holds("EXISTS x . x = 41")

    def test_nested_alternation(self):
        assert holds(
            "FORALL n, d, s . Mgr(n, d, s) IMPLIES "
            "(EXISTS n2, d2, s2 . Mgr(n2, d2, s2) AND s2 >= s)"
        )


class TestBindingsAndErrors:
    def test_explicit_binding(self):
        assert holds("Mgr(n, d, 40)", n="Mary", d="R&D")

    def test_missing_binding_raises(self):
        with pytest.raises(QueryBindingError):
            holds("Mgr(n, 'R&D', 40)")

    def test_context_reuse(self):
        query = parse_query("EXISTS d, s . Mgr(Mary, d, s)")
        context = make_context(ROWS, query)
        assert evaluate(query, ROWS, context=context)


class TestOpenAnswers:
    def test_projection(self):
        result = answers(parse_query("Mgr(n, d, 40)"), ROWS, ("n",))
        assert result == {("Mary",), ("Eve",)}

    def test_two_columns_ordered(self):
        result = answers(parse_query("Mgr(n, d, 40)"), ROWS, ("d", "n"))
        assert result == {("R&D", "Mary"), ("IT", "Eve")}

    def test_default_variable_order_is_sorted(self):
        result = answers(parse_query("Mgr(n, d, 40)"), ROWS)
        assert result == {("R&D", "Mary"), ("IT", "Eve")}

    def test_join_answers(self):
        text = (
            "EXISTS d1, d2 . Mgr(n1, d1, s) AND Mgr(n2, d2, s) AND n1 != n2"
        )
        result = answers(parse_query(text), ROWS, ("n1", "n2", "s"))
        assert ("Mary", "Eve", 40) in result
        assert ("Eve", "Mary", 40) in result

    def test_projection_of_free_variables(self):
        # Variables omitted from the answer tuple are existential.
        result = answers(parse_query("Mgr(n, d, s)"), ROWS, ("s",))
        assert result == {(40,), (30,)}

    def test_unknown_answer_variable_rejected(self):
        with pytest.raises(QueryBindingError):
            answers(parse_query("Mgr(n, d, s)"), ROWS, ("nope",))

    def test_negation_in_open_query(self):
        text = "EXISTS d, s . Mgr(n, d, s) AND NOT Mgr(n, 'PR', 30)"
        result = answers(parse_query(text), ROWS, ("n",))
        assert result == {("Mary",), ("Eve",)}


class TestEmptyInstance:
    def test_exists_false_on_empty(self):
        empty = RelationInstance(SCHEMA)
        assert not evaluate(parse_query("EXISTS n, d, s . Mgr(n, d, s)"), empty)

    def test_forall_true_on_empty(self):
        empty = RelationInstance(SCHEMA)
        assert evaluate(
            parse_query("FORALL n, d, s . Mgr(n, d, s) IMPLIES FALSE"), empty
        )
