"""Unit tests for workload generators."""

import random

import pytest

from repro.constraints.conflict_graph import build_conflict_graph
from repro.constraints.conflicts import is_consistent
from repro.datagen.generators import (
    CHAIN_FDS,
    DUP_FDS,
    GRID_FDS,
    INTEGRATION_FDS,
    chain_instance,
    chain_priority_pairs,
    chain_rows,
    duplicated_grid_instance,
    duplicated_grid_priority_pairs,
    grid_instance,
    integration_instance,
    random_inconsistent_instance,
)
from repro.priorities.priority import Priority
from repro.repairs.enumerate import count_repairs


class TestGrid:
    def test_repair_count(self):
        graph = build_conflict_graph(grid_instance(4, per_group=3), GRID_FDS)
        assert count_repairs(graph) == 3**4

    def test_groups_are_cliques(self):
        graph = build_conflict_graph(grid_instance(2, per_group=4), GRID_FDS)
        components = graph.connected_components()
        assert sorted(len(c) for c in components) == [4, 4]
        for component in components:
            for row in component:
                assert graph.degree(row) == 3


class TestChain:
    def test_graph_is_a_path(self):
        graph = build_conflict_graph(chain_instance(6), CHAIN_FDS)
        degrees = sorted(graph.degree(v) for v in graph.vertices)
        assert degrees == [1, 1, 2, 2, 2, 2]
        assert len(graph.connected_components()) == 1

    def test_both_fds_participate(self):
        graph = build_conflict_graph(chain_instance(5), CHAIN_FDS)
        violated = set()
        for pair in graph.edges():
            violated.update(graph.edge_labels(pair))
        assert len(violated) == 2

    def test_chain_rows_order(self):
        instance = chain_instance(5)
        ordered = chain_rows(instance)
        graph = build_conflict_graph(instance, CHAIN_FDS)
        for first, second in zip(ordered, ordered[1:]):
            assert graph.are_conflicting(first, second)

    def test_chain_priority_is_total(self):
        instance = chain_instance(7)
        graph = build_conflict_graph(instance, CHAIN_FDS)
        priority = Priority(graph, chain_priority_pairs(instance))
        assert priority.is_total

    def test_length_one(self):
        instance = chain_instance(1)
        assert len(instance) == 1
        assert is_consistent(instance.rows, CHAIN_FDS)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            chain_instance(0)


class TestDuplicatedGrid:
    def test_structure_matches_example8(self):
        instance = duplicated_grid_instance(1, dup=2)
        graph = build_conflict_graph(instance, DUP_FDS)
        assert graph.vertex_count == 3
        assert graph.edge_count == 2  # challenger vs each duplicate

    def test_priority_orients_challenger_over_duplicates(self):
        instance = duplicated_grid_instance(2, dup=3)
        graph = build_conflict_graph(instance, DUP_FDS)
        priority = Priority(graph, duplicated_grid_priority_pairs(instance))
        assert priority.is_total
        assert len(priority.edges) == 6


class TestRandomInstance:
    def test_size_and_reproducibility(self):
        a = random_inconsistent_instance(20, rng=random.Random(1))
        b = random_inconsistent_instance(20, rng=random.Random(1))
        assert a == b
        assert len(a) == 20

    def test_small_key_domain_forces_conflicts(self):
        instance = random_inconsistent_instance(
            12, key_domain=2, rng=random.Random(3)
        )
        assert not is_consistent(instance.rows, GRID_FDS)


class TestIntegration:
    def test_labels_cover_all_rows(self):
        instance, labels = integration_instance(6, 3, rng=random.Random(5))
        assert set(labels) == set(instance.rows)

    def test_disagreement_creates_conflicts(self):
        instance, _ = integration_instance(
            10, 4, disagreement=0.9, rng=random.Random(11)
        )
        assert not is_consistent(instance.rows, INTEGRATION_FDS)

    def test_reproducible(self):
        a, _ = integration_instance(5, 2, rng=random.Random(9))
        b, _ = integration_instance(5, 2, rng=random.Random(9))
        assert a == b
