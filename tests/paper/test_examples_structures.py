"""Golden tests for Examples 4-9 and Figures 1-4.

Each test reconstructs a figure's conflict graph programmatically and
asserts the exact vertex, edge and orientation sets, plus the repair
families the surrounding example claims.
"""

from repro.constraints.conflict_graph import render_conflict_graph
from repro.core.families import Family, family_chain
from repro.datagen.paper_instances import (
    example4_scenario,
    example7_scenario,
    example8_scenario,
    example9_printed,
    example9_reconstructed,
)
from repro.repairs.enumerate import count_repairs, enumerate_repairs


class TestExample4Figure1:
    def test_repairs_are_all_choice_functions(self):
        """'The set of all repairs of r_n ... is equal to the set
        {0,1}^n of all functions from {0..n-1} to {0,1}.'"""
        scenario = example4_scenario(4)
        repairs = set(enumerate_repairs(scenario.graph))
        assert len(repairs) == 2**4
        expected = set()
        for mask in range(2**4):
            expected.add(
                frozenset(
                    scenario.rows[f"t{i}{(mask >> i) & 1}"] for i in range(4)
                )
            )
        assert repairs == expected

    def test_figure1_conflict_graph(self):
        """Figure 1: four disjoint edges (0,0)-(0,1) ... (3,0)-(3,1)."""
        scenario = example4_scenario(4)
        assert scenario.graph.vertex_count == 8
        assert scenario.graph.edge_count == 4
        for i in range(4):
            assert scenario.graph.are_conflicting(
                scenario.rows[f"t{i}0"], scenario.rows[f"t{i}1"]
            )

    def test_consistent_relation_repairs_to_itself(self):
        """'The set of repairs of a consistent relation r contains only r.'"""
        from repro.constraints.conflict_graph import build_conflict_graph
        from repro.datagen.generators import GRID_FDS, GRID_SCHEMA
        from repro.relational.instance import RelationInstance

        instance = RelationInstance.from_values(GRID_SCHEMA, [(0, 0), (1, 1)])
        graph = build_conflict_graph(instance, GRID_FDS)
        assert list(enumerate_repairs(graph)) == [instance.rows]


class TestExample7Figure2:
    def test_figure2_orientation(self):
        scenario = example7_scenario()
        names = {row: label for label, row in scenario.rows.items()}
        art = render_conflict_graph(scenario.graph, names, scenario.priority.edges)
        assert "ta -> tb" in art
        assert "ta -> tc" in art
        assert "tb -- tc" in art  # the tb-tc conflict stays unoriented

    def test_repairs_and_locally_preferred(self):
        scenario = example7_scenario()
        chain = family_chain(scenario.priority)
        assert set(chain[Family.REP]) == {
            scenario.row_set("ta"),
            scenario.row_set("tb"),
            scenario.row_set("tc"),
        }
        assert chain[Family.LOCAL] == [scenario.row_set("ta")]


class TestExample8Figure3:
    def test_figure3_structure(self):
        """tc conflicts with both duplicates; ta and tb do not conflict."""
        scenario = example8_scenario()
        graph = scenario.graph
        assert graph.are_conflicting(scenario.rows["tc"], scenario.rows["ta"])
        assert graph.are_conflicting(scenario.rows["tc"], scenario.rows["tb"])
        assert not graph.are_conflicting(scenario.rows["ta"], scenario.rows["tb"])
        assert scenario.priority.is_total

    def test_non_categoricity_of_lrep(self):
        """Example 8: both repairs are locally optimal under a *total*
        priority, so L-Rep violates P4."""
        scenario = example8_scenario()
        chain = family_chain(scenario.priority)
        assert set(chain[Family.REP]) == set(chain[Family.LOCAL])
        assert len(chain[Family.LOCAL]) == 2


class TestExample9Figure4:
    def test_printed_values_yield_a_path(self):
        """Erratum: the printed tuples give the path ta-tb-tc-td-te."""
        scenario = example9_printed()
        graph = scenario.graph
        order = ["ta", "tb", "tc", "td", "te"]
        for first, second in zip(order, order[1:]):
            assert graph.are_conflicting(
                scenario.rows[first], scenario.rows[second]
            )
        assert graph.edge_count == 4
        assert count_repairs(graph) == 4  # not 2 as printed

    def test_printed_priority_is_total_on_the_path(self):
        scenario = example9_printed()
        assert scenario.priority.is_total

    def test_printed_semantics_collapse(self):
        """Erratum: with the printed data S-Rep = G-Rep = C-Rep = {r1}."""
        scenario = example9_printed()
        chain = family_chain(scenario.priority)
        r1 = [scenario.row_set("ta", "tc", "te")]
        assert chain[Family.SEMI_GLOBAL] == r1
        assert chain[Family.GLOBAL] == r1
        assert chain[Family.COMMON] == r1

    def test_reconstruction_realizes_the_claims(self):
        """The K_{3,2} reconstruction: Rep = {r1, r2} exactly,
        S-Rep = {r1, r2} (non-categoricity of S under the *partial*
        chain priority), G-Rep = {r1} (Section 3.3), C-Rep = {r1}."""
        scenario = example9_reconstructed()
        chain = family_chain(scenario.priority)
        r1 = scenario.row_set("ta", "tc", "te")
        r2 = scenario.row_set("tb", "td")
        assert set(chain[Family.REP]) == {r1, r2}
        assert set(chain[Family.SEMI_GLOBAL]) == {r1, r2}
        assert chain[Family.GLOBAL] == [r1]
        assert chain[Family.COMMON] == [r1]

    def test_reconstruction_uses_both_dependencies(self):
        scenario = example9_reconstructed()
        violated = set()
        for pair in scenario.graph.edges():
            violated.update(scenario.graph.edge_labels(pair))
        assert len(violated) == 2

    def test_reconstruction_priority_is_partial(self):
        """Section 3.3: 'the user provides priority only for some of
        the violated functional dependencies'."""
        scenario = example9_reconstructed()
        assert not scenario.priority.is_total
        assert len(scenario.priority.unoriented_edges()) == 2
