#!/usr/bin/env python3
"""Regenerate Figure 5 (the complexity summary table) empirically.

For every cell of the paper's table this harness measures the matching
implementation on a size sweep, fits the growth law, and prints the
measured class next to the paper's claim:

    Repair Check            Consistent Answers
            {∀,∃}-free              conjunctive
    Rep     PTIME / poly(obs) ...

Classification is deliberately coarse — the point is the *shape*: a
cell claimed PTIME must look polynomial (log-log slope bounded), and a
cell claimed co-NP/Π²p-complete is served by an exact exponential
solver whose cost tracks the repair space.

Run:  python benchmarks/fig5_harness.py [--fast]
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from typing import Callable, List, Sequence, Tuple

from repro.core.families import Family, is_preferred_repair
from repro.cqa.engine import CqaEngine
from repro.cqa.tractable import consistent_answer_qf
from repro.datagen.generators import CHAIN_FDS, GRID_FDS, chain_rows
from repro.query.ast import Atom, Const
from repro.query.parser import parse_query
from repro.repairs.checking import is_repair_on_graph

if __package__:
    from benchmarks.workloads import chain_workload, grid_workload, sample_candidate
else:  # run as a plain script: python benchmarks/fig5_harness.py
    sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
    from workloads import chain_workload, grid_workload, sample_candidate

#: Conjunctive self-join query used across the "conjunctive" column.
CONJUNCTIVE = parse_query(
    "EXISTS a, b1, b2, c1, c2, d1, d2 . "
    "R(a, b1, c1, d1) AND R(a, b2, c2, d2) AND b1 != b2"
)


def _measure(fn: Callable[[], object], repeats: int = 3) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


#: Log-log slope above which a sweep is deemed super-polynomial.  The
#: PTIME cells of Figure 5 all observe apparent degrees ≤ 1.5 in our
#: implementations; the exponential cells observe 2.5 and above.
POLY_DEGREE_CUTOFF = 2.0


def _classify(sizes: Sequence[int], times: Sequence[float]) -> str:
    """Coarse growth classification from a size sweep.

    Fits log(time) against log(n); a bounded apparent degree means
    polynomial growth, an unbounded (large) one means the exact solver
    is tracking an exponential search space.  The log-log slope is far
    more stable on short sweeps than residual comparison of competing
    models.
    """
    floored = [max(t, 1e-7) for t in times]
    logs = [math.log(t) for t in floored]
    xs = [math.log(s) for s in sizes]
    n = len(sizes)
    mean_x = sum(xs) / n
    mean_y = sum(logs) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, logs))
    var = sum((x - mean_x) ** 2 for x in xs) or 1e-12
    degree = cov / var
    if degree > POLY_DEGREE_CUTOFF:
        span = sizes[-1] - sizes[0]
        base = math.exp((logs[-1] - logs[0]) / span) if span else float("nan")
        return f"exp(obs, ~{base:.2f}^n)"
    return f"poly(obs, ~n^{max(degree, 0.0):.1f})"


def _sweep(label: str, sizes: Sequence[int], run) -> Tuple[str, List[float]]:
    times = []
    for size in sizes:
        times.append(_measure(lambda s=size: run(s)))
    return _classify(sizes, times), times


def build_rows(fast: bool) -> List[Tuple[str, str, str, str]]:
    scale = 1 if fast else 2
    ptime_sizes = [16 * scale, 32 * scale, 64 * scale]
    # Exponential cells need a wide size spread so the growth law
    # dominates measurement noise; G-cells cap lower because the
    # ≪-maximality computation is quadratic in the repair count.
    exp_sizes = [8, 12, 16] if fast else [10, 14, 18]
    naive_cqa_sizes = [8, 14, 20] if fast else [10, 18, 26]

    def checker_sweep(family):
        def run(n):
            _, graph, priority = chain_workload(n)
            candidate = sample_candidate(graph)
            if family is None:
                is_repair_on_graph(candidate, graph)
            else:
                is_preferred_repair(family, candidate, priority)

        sizes = exp_sizes if family is Family.GLOBAL else ptime_sizes
        cls, _ = _sweep("check", sizes, run)
        return cls

    def qf_sweep(family):
        query = Atom("R", [Const(0), Const(0)])
        if family is None:  # tractable Rep algorithm
            def run(n):
                _, graph, _ = grid_workload(n)
                consistent_answer_qf(query, graph)

            cls, _ = _sweep("qf", ptime_sizes, run)
            return cls

        def run(n):
            instance, _, priority = chain_workload(n)
            CqaEngine(instance, CHAIN_FDS, priority, family).answer(
                _ground_atom_of_chain(instance)
            )

        # G needs the exponential-regime sizes: at tiny n the repair
        # space is too small for the growth law to show.
        sizes = exp_sizes if family is Family.GLOBAL else naive_cqa_sizes
        cls, _ = _sweep("qf", sizes, run)
        return cls

    def conjunctive_sweep(family):
        def run(n):
            instance, _, priority = chain_workload(n)
            CqaEngine(instance, CHAIN_FDS, priority, family).answer(CONJUNCTIVE)

        sizes = exp_sizes if family is Family.GLOBAL else naive_cqa_sizes
        cls, _ = _sweep("cq", sizes, run)
        return cls

    def _ground_atom_of_chain(instance):
        first = chain_rows(instance)[0]
        return Atom(
            "R",
            [Const(first["A"]), Const(first["B"]), Const(first["C"]), Const(first["D"])],
        )

    rows = []
    rows.append(
        (
            "Rep",
            f"PTIME | {checker_sweep(None)}",
            f"PTIME | {qf_sweep(None)}",
            f"co-NP-c | {conjunctive_sweep(Family.REP)}",
        )
    )
    for family, name in (
        (Family.LOCAL, "L-Rep"),
        (Family.SEMI_GLOBAL, "S-Rep"),
    ):
        rows.append(
            (
                name,
                f"PTIME | {checker_sweep(family)}",
                f"co-NP-c | {qf_sweep(family)}",
                f"co-NP-c | {conjunctive_sweep(family)}",
            )
        )
    rows.append(
        (
            "G-Rep",
            f"co-NP-c | {checker_sweep(Family.GLOBAL)}",
            f"Pi2p-c | {qf_sweep(Family.GLOBAL)}",
            f"Pi2p-c | {conjunctive_sweep(Family.GLOBAL)}",
        )
    )
    rows.append(
        (
            "C-Rep",
            f"PTIME | {checker_sweep(Family.COMMON)}",
            f"co-NP-c | {qf_sweep(Family.COMMON)}",
            f"co-NP-c | {conjunctive_sweep(Family.COMMON)}",
        )
    )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller sweeps")
    args = parser.parse_args(argv)

    print("Figure 5 — paper claim | observed growth class")
    print(f"{'':8s}{'Repair Check':28s}{'CA {∀,∃}-free':28s}{'CA conjunctive':28s}")
    for name, check, qf, cq in build_rows(args.fast):
        print(f"{name:8s}{check:28s}{qf:28s}{cq:28s}")
    print(
        "\nReading: 'PTIME | poly(obs, ~n^k)' means the paper claims PTIME and\n"
        "the measured sweep fits a polynomial of degree ~k; co-NP/Π²p cells are\n"
        "served by exact exponential solvers, observed as exp growth."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
