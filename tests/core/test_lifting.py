"""Unit tests for the ≪ preference lifting (Proposition 5 machinery)."""

from repro.core.lifting import (
    maximal_under_preference,
    prefers,
    strictly_prefers,
)
from repro.datagen.paper_instances import example9_reconstructed, mgr_scenario
from repro.priorities.priority import empty_priority


class TestPrefers:
    def test_subset_is_vacuously_preferred(self):
        scenario = mgr_scenario()
        r1 = scenario.row_set("mary_rd", "john_pr")
        assert prefers(scenario.priority, frozenset(), r1)
        assert prefers(scenario.priority, r1, r1)

    def test_requires_domination_of_every_loss(self):
        scenario = example9_reconstructed()
        r1 = scenario.row_set("ta", "tc", "te")
        r2 = scenario.row_set("tb", "td")
        # r2 ≪ r1 (tb dominated by ta, td by tc)…
        assert prefers(scenario.priority, r2, r1)
        # …but not the converse: nothing dominates ta.
        assert not prefers(scenario.priority, r1, r2)

    def test_empty_priority_never_strictly_prefers(self):
        scenario = mgr_scenario()
        empty = empty_priority(scenario.graph)
        repairs = [
            scenario.row_set("mary_rd", "john_pr"),
            scenario.row_set("john_rd", "mary_it"),
            scenario.row_set("mary_it", "john_pr"),
        ]
        for first in repairs:
            for second in repairs:
                assert not strictly_prefers(empty, first, second)

    def test_non_transitivity_is_possible(self):
        """≪ is not an order in general; maximality is on the raw
        relation.  Here we just document that chains of ≪ may skip."""
        scenario = mgr_scenario()
        r1 = scenario.row_set("mary_rd", "john_pr")
        r3 = scenario.row_set("mary_it", "john_pr")
        assert strictly_prefers(scenario.priority, r3, r1)


class TestMaximalUnderPreference:
    def test_singleton_pool(self):
        scenario = mgr_scenario()
        r1 = scenario.row_set("mary_rd", "john_pr")
        assert maximal_under_preference(scenario.priority, [r1]) == [r1]

    def test_dominated_repairs_removed(self):
        scenario = mgr_scenario()
        r1 = scenario.row_set("mary_rd", "john_pr")
        r2 = scenario.row_set("john_rd", "mary_it")
        r3 = scenario.row_set("mary_it", "john_pr")
        result = maximal_under_preference(scenario.priority, [r1, r2, r3])
        assert set(result) == {r1, r2}

    def test_empty_pool(self):
        scenario = mgr_scenario()
        assert maximal_under_preference(scenario.priority, []) == []
