"""Tests for the PTIME ground-quantifier-free CQA algorithm.

Figure 5, row ``Rep``, column "{∀,∃}-free queries": consistent answers
are computable in polynomial time.  The property tests cross-check the
witness-search algorithm against the naive evaluate-in-every-repair
semantics on random instances.
"""

import pytest
from hypothesis import given, settings

from repro.constraints.conflict_graph import build_conflict_graph
from repro.cqa.answers import Verdict
from repro.cqa.tractable import (
    consistent_answer_qf,
    is_consistently_true_qf,
    some_repair_satisfies_qf,
)
from repro.datagen.generators import GRID_FDS, GRID_SCHEMA
from repro.datagen.paper_instances import example4_scenario, mgr_scenario
from repro.exceptions import QueryError
from repro.query.ast import And, Atom, Comparison, Const, Not, Or, Var
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query
from repro.repairs.enumerate import enumerate_repairs
from tests.conftest import key_instances


def fact(*values):
    return Atom("R", [Const(v) for v in values])


def naive_consistent_answer(query, graph):
    satisfied = 0
    total = 0
    for repair in enumerate_repairs(graph):
        total += 1
        if evaluate(query, repair):
            satisfied += 1
    if satisfied == total:
        return Verdict.TRUE
    if satisfied == 0:
        return Verdict.FALSE
    return Verdict.UNDETERMINED


class TestGroundFacts:
    def test_unconflicted_fact_is_certain(self):
        scenario = example4_scenario(2)
        graph = build_conflict_graph(
            scenario.instance.with_rows([scenario.instance.row(9, 9)]), GRID_FDS
        )
        assert consistent_answer_qf(fact(9, 9), graph) is Verdict.TRUE

    def test_conflicted_fact_is_undetermined(self):
        scenario = example4_scenario(2)
        assert consistent_answer_qf(fact(0, 0), scenario.graph) is Verdict.UNDETERMINED

    def test_absent_fact_is_false(self):
        scenario = example4_scenario(2)
        assert consistent_answer_qf(fact(7, 7), scenario.graph) is Verdict.FALSE

    def test_negated_conflicted_fact(self):
        scenario = example4_scenario(2)
        assert (
            consistent_answer_qf(Not(fact(0, 0)), scenario.graph)
            is Verdict.UNDETERMINED
        )

    def test_disjunction_of_alternatives_is_true(self):
        # Every repair keeps (0,0) or (0,1).
        scenario = example4_scenario(2)
        query = Or([fact(0, 0), fact(0, 1)])
        assert consistent_answer_qf(query, scenario.graph) is Verdict.TRUE

    def test_conjunction_of_conflicting_facts_is_false(self):
        scenario = example4_scenario(2)
        query = And([fact(0, 0), fact(0, 1)])
        assert consistent_answer_qf(query, scenario.graph) is Verdict.FALSE

    def test_comparisons_are_data_independent(self):
        scenario = example4_scenario(2)
        assert is_consistently_true_qf(
            parse_query("1 < 2 OR R(0, 0)"), scenario.graph
        )

    def test_non_ground_rejected(self):
        scenario = example4_scenario(2)
        with pytest.raises(QueryError):
            consistent_answer_qf(Atom("R", [Var("x"), Const(0)]), scenario.graph)
        with pytest.raises(QueryError):
            some_repair_satisfies_qf(
                parse_query("EXISTS x . R(x, 0)"), scenario.graph
            )


class TestWitnessSearch:
    def test_negative_literal_needs_excluding_witness(self):
        # Some repair excludes (0,0): the one containing (0,1).
        scenario = example4_scenario(1)
        assert some_repair_satisfies_qf(Not(fact(0, 0)), scenario.graph)

    def test_forced_tuple_cannot_be_excluded(self):
        # (9,9) conflicts with nothing, so every repair contains it.
        from repro.relational.instance import RelationInstance

        instance = RelationInstance.from_values(GRID_SCHEMA, [(9, 9)])
        graph = build_conflict_graph(instance, GRID_FDS)
        assert not some_repair_satisfies_qf(Not(fact(9, 9)), graph)

    def test_incompatible_positive_facts(self):
        scenario = example4_scenario(1)
        assert not some_repair_satisfies_qf(
            And([fact(0, 0), fact(0, 1)]), scenario.graph
        )

    def test_contradictory_literals(self):
        scenario = example4_scenario(1)
        assert not some_repair_satisfies_qf(
            And([fact(0, 0), Not(fact(0, 0))]), scenario.graph
        )

    def test_witnesses_must_be_mutually_consistent(self):
        # Exclude both (0,0) and (0,1): their only witnesses are each
        # other, which conflict — no repair excludes both.
        scenario = example4_scenario(1)
        query = And([Not(fact(0, 0)), Not(fact(0, 1))])
        assert not some_repair_satisfies_qf(query, scenario.graph)


QUERY_POOL = [
    fact(0, 0),
    Not(fact(0, 1)),
    Or([fact(0, 0), fact(1, 1)]),
    And([fact(0, 0), Not(fact(1, 0))]),
    Or([And([fact(0, 0), fact(1, 1)]), Not(fact(0, 2))]),
    And([Or([fact(0, 0), fact(0, 1)]), Or([fact(1, 0), Not(fact(1, 1))])]),
    Not(And([fact(0, 0), fact(1, 0)])),
    Or([Comparison("<", Const(1), Const(2)), fact(2, 2)]),
    And([Comparison(">", Const(1), Const(2)), fact(0, 0)]),
]


class TestAgainstNaive:
    @pytest.mark.parametrize("query", QUERY_POOL)
    @given(instance=key_instances(max_tuples=7))
    @settings(max_examples=25, deadline=None)
    def test_tractable_equals_naive(self, query, instance):
        graph = build_conflict_graph(instance, GRID_FDS)
        assert consistent_answer_qf(query, graph) == naive_consistent_answer(
            query, graph
        )

    def test_on_mgr_example(self):
        scenario = mgr_scenario()
        mary = Atom("Mgr", [Const("Mary"), Const("R&D"), Const(40), Const(3)])
        john = Atom("Mgr", [Const("John"), Const("PR"), Const(30), Const(4)])
        assert consistent_answer_qf(mary, scenario.graph) is Verdict.UNDETERMINED
        assert (
            consistent_answer_qf(Or([mary, john]), scenario.graph)
            is Verdict.UNDETERMINED
        )
        someone = Or(
            [
                mary,
                john,
                Atom("Mgr", [Const("John"), Const("R&D"), Const(10), Const(2)]),
                Atom("Mgr", [Const("Mary"), Const("IT"), Const(20), Const(1)]),
            ]
        )
        assert consistent_answer_qf(someone, scenario.graph) is Verdict.TRUE
