"""repro — Preference-Driven Querying of Inconsistent Relational Databases.

A from-scratch reproduction of Staworko, Chomicki & Marcinkowski
(EDBT 2006 Workshops): the framework of *preferred repairs* (families
L-Rep, S-Rep, G-Rep, C-Rep selected by acyclic conflict-graph
orientations) and *preferred consistent query answers*, together with
the full substrate: a typed relational model, a first-order query
language, functional-dependency theory, conflict graphs/hypergraphs,
repair enumeration, priorities and the winnow operator, plus data
generators and related-work baselines.

Quickstart::

    from repro import (
        CqaEngine, Family, FunctionalDependency, RelationInstance,
        RelationSchema,
    )

    schema = RelationSchema("Mgr", ["Name", "Dept", "Salary:number"])
    r = RelationInstance.from_values(schema, [
        ("Mary", "R&D", 40), ("John", "R&D", 10), ("Mary", "IT", 20),
    ])
    fds = [FunctionalDependency.parse("Name -> Dept, Salary", "Mgr"),
           FunctionalDependency.parse("Dept -> Name, Salary", "Mgr")]
    engine = CqaEngine(r, fds, family=Family.GLOBAL)
    engine.answer("EXISTS d, s . Mgr(Mary, d, s) AND s > 30")

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.exceptions import (
    CleaningError,
    ConstraintError,
    ConstraintSyntaxError,
    CyclicPriorityError,
    NonConflictingPriorityError,
    PriorityError,
    QueryBindingError,
    QueryError,
    QuerySyntaxError,
    ReproError,
    SchemaError,
    TypeMismatchError,
    UnknownAttributeError,
    UnknownRelationError,
)
from repro.relational import (
    Attribute,
    AttributeType,
    Database,
    DatabaseSchema,
    RelationInstance,
    RelationSchema,
    Row,
    integrate_sources,
)
from repro.query import Formula, parse_query, parse_sql, sql_to_formula
from repro.query.evaluator import answers, evaluate
from repro.constraints import (
    ConflictGraph,
    DenialConstraint,
    FunctionalDependency,
    build_conflict_graph,
    is_consistent,
)
from repro.repairs import all_repairs, count_repairs, enumerate_repairs, is_repair
from repro.priorities import (
    Priority,
    empty_priority,
    priority_from_ranking,
    priority_from_source_reliability,
    priority_from_timestamps,
    winnow,
)
from repro.core import (
    Family,
    all_cleaning_results,
    clean,
    is_globally_optimal,
    is_locally_optimal,
    is_preferred_repair,
    is_semi_globally_optimal,
    preferred_repairs,
)
from repro.cqa import ClosedAnswer, CqaEngine, OpenAnswers, Verdict
from repro.backend import SqlCqaEngine, SqliteMirror
from repro.incremental import (
    DynamicConflictGraph,
    GraphDelta,
    IncrementalCqaEngine,
)
from repro.service import AnswerCache, BrokerResult, Request, RequestBroker

__version__ = "1.2.0"

__all__ = [
    "AnswerCache",
    "Attribute",
    "AttributeType",
    "BrokerResult",
    "CleaningError",
    "ClosedAnswer",
    "ConflictGraph",
    "ConstraintError",
    "ConstraintSyntaxError",
    "CqaEngine",
    "CyclicPriorityError",
    "Database",
    "DatabaseSchema",
    "DenialConstraint",
    "DynamicConflictGraph",
    "Family",
    "Formula",
    "FunctionalDependency",
    "GraphDelta",
    "IncrementalCqaEngine",
    "NonConflictingPriorityError",
    "OpenAnswers",
    "Priority",
    "PriorityError",
    "QueryBindingError",
    "QueryError",
    "QuerySyntaxError",
    "Request",
    "RequestBroker",
    "RelationInstance",
    "RelationSchema",
    "ReproError",
    "Row",
    "SchemaError",
    "SqlCqaEngine",
    "SqliteMirror",
    "TypeMismatchError",
    "UnknownAttributeError",
    "UnknownRelationError",
    "Verdict",
    "all_cleaning_results",
    "all_repairs",
    "answers",
    "build_conflict_graph",
    "clean",
    "count_repairs",
    "empty_priority",
    "enumerate_repairs",
    "evaluate",
    "integrate_sources",
    "is_consistent",
    "is_globally_optimal",
    "is_locally_optimal",
    "is_preferred_repair",
    "is_repair",
    "is_semi_globally_optimal",
    "parse_query",
    "parse_sql",
    "preferred_repairs",
    "priority_from_ranking",
    "priority_from_source_reliability",
    "priority_from_timestamps",
    "sql_to_formula",
    "winnow",
    "__version__",
]
