"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main
from repro.datagen.paper_instances import mgr_scenario
from repro.relational.csv_io import write_instance_csv
from repro.relational.sqlite_io import save_instance


@pytest.fixture
def mgr_csv(tmp_path):
    path = tmp_path / "Mgr.csv"
    scenario = mgr_scenario()
    # Add a Source column so the CLI can build the reliability priority.
    from repro.relational.instance import RelationInstance
    from repro.relational.schema import RelationSchema
    from repro.datagen.paper_instances import mgr_source_of

    schema = RelationSchema(
        "Mgr", ["Name", "Dept", "Salary:number", "Reports:number", "Source"]
    )
    sources = mgr_source_of()
    instance = RelationInstance.from_values(
        schema,
        [tuple(row.values) + (sources[row],) for row in scenario.instance],
    )
    write_instance_csv(instance, path)
    return path


MGR_FDS = ["Dept -> Name, Salary, Reports", "Name -> Dept, Salary, Reports"]


def fd_args():
    args = []
    for spec in MGR_FDS:
        args.extend(["--fd", spec])
    return args


class TestConflictsCommand:
    def test_renders_graph(self, mgr_csv, capsys):
        assert main(["conflicts", "--csv", str(mgr_csv), *fd_args()]) == 0
        out = capsys.readouterr().out
        assert "3 conflicts" in out


class TestRepairsCommand:
    def test_lists_repairs(self, mgr_csv, capsys):
        assert main(["repairs", "--csv", str(mgr_csv), *fd_args()]) == 0
        out = capsys.readouterr().out
        assert "Rep: 3 repair(s)" in out

    def test_family_with_source_priority(self, mgr_csv, capsys):
        code = main(
            [
                "repairs",
                "--csv",
                str(mgr_csv),
                *fd_args(),
                "--family",
                "G",
                "--prefer-source",
                "Source",
                "--source-order",
                "s1>s3,s2>s3",
            ]
        )
        assert code == 0
        assert "G-Rep: 2 repair(s)" in capsys.readouterr().out


class TestCleanCommand:
    def test_clean_with_ranking(self, mgr_csv, capsys):
        code = main(
            [
                "clean",
                "--csv",
                str(mgr_csv),
                *fd_args(),
                "--prefer-new",
                "Salary",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Mary" in out


class TestCqaCommand:
    def test_cqa_verdict(self, mgr_csv, capsys):
        code = main(
            [
                "cqa",
                "--csv",
                str(mgr_csv),
                *fd_args(),
                "--family",
                "G",
                "--prefer-source",
                "Source",
                "--source-order",
                "s1>s3,s2>s3",
                "--query",
                "EXISTS x1,y1,z1,s1,x2,y2,z2,s2 . "
                "Mgr(Mary,x1,y1,z1,s1) AND Mgr(John,x2,y2,z2,s2) AND y1 > y2",
            ]
        )
        assert code == 0
        assert "verdict=true" in capsys.readouterr().out

    def test_undetermined_exit_code(self, mgr_csv, capsys):
        code = main(
            [
                "cqa",
                "--csv",
                str(mgr_csv),
                *fd_args(),
                "--query",
                "EXISTS x1,y1,z1,s1,x2,y2,z2,s2 . "
                "Mgr(Mary,x1,y1,z1,s1) AND Mgr(John,x2,y2,z2,s2) AND y1 > y2",
            ]
        )
        assert code == 2
        assert "verdict=undetermined" in capsys.readouterr().out


class TestSqliteSource:
    def test_repairs_from_sqlite(self, tmp_path, capsys):
        scenario = mgr_scenario()
        path = tmp_path / "db.sqlite"
        save_instance(scenario.instance, path)
        code = main(
            [
                "repairs",
                "--sqlite",
                str(path),
                "--relation",
                "Mgr",
                *fd_args(),
            ]
        )
        assert code == 0
        assert "3 repair(s)" in capsys.readouterr().out

    def test_sqlite_requires_relation(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["repairs", "--sqlite", str(tmp_path / "x.sqlite"), "--fd", "A -> B"])


class TestExamplesCommand:
    def test_all_examples(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "example9_reconstructed" in out
        assert "G-Rep" in out

    def test_single_example(self, capsys):
        assert main(["examples", "--name", "example7"]) == 0
        out = capsys.readouterr().out
        assert "example7" in out


class TestAggregateCommand:
    def test_sum_range(self, mgr_csv, capsys):
        code = main(
            [
                "aggregate",
                "--csv",
                str(mgr_csv),
                *fd_args(),
                "--agg",
                "sum",
                "--attribute",
                "Salary",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SUM(Salary) over Rep: [30, 70]" in out

    def test_preferred_family_range(self, mgr_csv, capsys):
        code = main(
            [
                "aggregate",
                "--csv",
                str(mgr_csv),
                *fd_args(),
                "--agg",
                "max",
                "--attribute",
                "Salary",
                "--family",
                "G",
                "--prefer-source",
                "Source",
                "--source-order",
                "s1>s3,s2>s3",
            ]
        )
        assert code == 0
        assert "MAX(Salary) over G-Rep: [20, 40]" in capsys.readouterr().out

    def test_count_star(self, mgr_csv, capsys):
        code = main(
            ["aggregate", "--csv", str(mgr_csv), *fd_args(), "--agg", "count_star"]
        )
        assert code == 0
        assert "(exact)" in capsys.readouterr().out

    def test_missing_attribute(self, mgr_csv):
        with pytest.raises(SystemExit):
            main(["aggregate", "--csv", str(mgr_csv), *fd_args(), "--agg", "sum"])


class TestArgumentErrors:
    def test_missing_data_source(self):
        with pytest.raises(SystemExit):
            main(["repairs", "--fd", "A -> B"])

    def test_missing_fd(self, mgr_csv):
        with pytest.raises(SystemExit):
            main(["repairs", "--csv", str(mgr_csv)])

    def test_bad_source_order(self, mgr_csv):
        with pytest.raises(SystemExit):
            main(
                [
                    "repairs",
                    "--csv",
                    str(mgr_csv),
                    *fd_args(),
                    "--prefer-source",
                    "Source",
                    "--source-order",
                    "garbage",
                ]
            )


@pytest.fixture
def kv_sqlite(tmp_path):
    """R(K, A:number, B) with fd K -> A persisted to a SQLite file."""
    from repro.constraints.fd import FunctionalDependency
    from repro.relational.database import Database
    from repro.relational.instance import RelationInstance
    from repro.relational.schema import RelationSchema
    from repro.relational.sqlite_io import save_database

    schema = RelationSchema("R", ["K", "A:number", "B"])
    rows = [("k1", 0, "x"), ("k1", 1, "x"), ("k2", 5, "y"), ("k3", 7, "w")]
    path = tmp_path / "db.sqlite"
    save_database(
        Database([RelationInstance.from_values(schema, rows)]),
        path,
        [FunctionalDependency.parse("K -> A", "R")],
    )
    return path


class TestQueryCommand:
    def test_pushed_open_query(self, kv_sqlite, capsys):
        code = main(
            [
                "query", "--sqlite", str(kv_sqlite), "--fd", "R: K -> A",
                "--backend", "sqlite", "--query", "EXISTS b . R(x, y, b)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend: sqlite (pushed down)" in out
        assert "certain: ('k2', 5), ('k3', 7)" in out

    def test_memory_backend_matches(self, kv_sqlite, capsys):
        import json

        results = {}
        for backend in ("memory", "sqlite"):
            assert (
                main(
                    [
                        "query", "--sqlite", str(kv_sqlite), "--fd", "R: K -> A",
                        "--backend", backend, "--json",
                        "--query", "EXISTS b . R(x, y, b)",
                    ]
                )
                == 0
            )
            results[backend] = json.loads(capsys.readouterr().out)
        assert results["memory"]["certain"] == results["sqlite"]["certain"]
        assert results["memory"]["possible"] == results["sqlite"]["possible"]

    def test_closed_query_exit_codes(self, kv_sqlite, capsys):
        code = main(
            [
                "query", "--sqlite", str(kv_sqlite), "--fd", "R: K -> A",
                "--backend", "sqlite", "--query", "EXISTS k, b . R(k, 1, b)",
            ]
        )
        assert code == 2  # undetermined
        assert "verdict=undetermined" in capsys.readouterr().out

    def test_sql_frontend(self, kv_sqlite, capsys):
        code = main(
            [
                "query", "--sqlite", str(kv_sqlite), "--fd", "R: K -> A",
                "--backend", "sqlite",
                "--sql", "SELECT t.K FROM R t WHERE t.A >= 1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "certain: ('k2',), ('k3',)" in out

    def test_fallback_is_reported(self, kv_sqlite, capsys):
        code = main(
            [
                "query", "--sqlite", str(kv_sqlite), "--fd", "R: K -> A",
                "--backend", "sqlite",
                "--query", "FORALL k, a, b . R(k, a, b) IMPLIES a < 10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend: fallback:" in out
        assert "verdict=true" in out

    def test_sqlite_backend_requires_sqlite_source(self, mgr_csv):
        with pytest.raises(SystemExit):
            main(
                [
                    "query", "--csv", str(mgr_csv), "--fd", MGR_FDS[0],
                    "--backend", "sqlite", "--query", "EXISTS x . Mgr(x, x, x, x)",
                ]
            )

    def test_prefer_flags_rejected_on_sqlite_backend(self, kv_sqlite):
        with pytest.raises(SystemExit):
            main(
                [
                    "query", "--sqlite", str(kv_sqlite), "--fd", "R: K -> A",
                    "--backend", "sqlite", "--prefer-new", "A",
                    "--query", "EXISTS b . R(x, y, b)",
                ]
            )


class TestPrefsqlQueryCommand:
    def test_prioritized_query_is_pushed(self, kv_sqlite, capsys):
        code = main(
            [
                "query", "--sqlite", str(kv_sqlite), "--relation", "R",
                "--fd", "K -> A", "--backend", "prefsql",
                "--prefer-new", "A", "--family", "C",
                "--query", "EXISTS b . R(x, y, b)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend: prefsql (pushed down)" in out
        # A=1 wins the k1 conflict group under --prefer-new A.
        assert "certain: ('k1', 1), ('k2', 5), ('k3', 7)" in out

    def test_matches_memory_backend_with_priority(self, kv_sqlite, capsys):
        import json

        results = {}
        for backend in ("memory", "prefsql"):
            assert (
                main(
                    [
                        "query", "--sqlite", str(kv_sqlite), "--relation", "R",
                        "--fd", "K -> A", "--backend", backend,
                        "--prefer-new", "A", "--family", "S", "--json",
                        "--query", "EXISTS b . R(x, y, b)",
                    ]
                )
                == 0
            )
            results[backend] = json.loads(capsys.readouterr().out)
        assert results["memory"]["certain"] == results["prefsql"]["certain"]
        assert results["memory"]["possible"] == results["prefsql"]["possible"]

    def test_prefsql_from_csv_source(self, mgr_csv, capsys):
        code = main(
            [
                "query", "--csv", str(mgr_csv), "--fd", MGR_FDS[0],
                "--fd", MGR_FDS[1], "--backend", "prefsql",
                "--query", "EXISTS d, s, r, src . Mgr(x, d, s, r, src)",
            ]
        )
        assert code == 0
        assert "backend:" in capsys.readouterr().out


class TestExplainFlag:
    def test_explain_prints_sql_without_executing(self, kv_sqlite, capsys):
        code = main(
            [
                "query", "--sqlite", str(kv_sqlite), "--relation", "R",
                "--fd", "K -> A", "--backend", "prefsql",
                "--prefer-new", "A", "--family", "C", "--explain",
                "--query", "EXISTS b . R(x, y, b)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "route: prefsql (pushed down, not executed)" in out
        assert "certain SQL: SELECT" in out
        assert "certain:" not in out  # no answers were computed

    def test_explain_reports_fallback_reason(self, kv_sqlite, capsys):
        code = main(
            [
                "query", "--sqlite", str(kv_sqlite), "--fd", "R: K -> A",
                "--backend", "sqlite", "--explain",
                "--query", "FORALL k, a, b . R(k, a, b) IMPLIES a < 10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "route: fallback" in out
        assert "reason:" in out

    def test_explain_json(self, kv_sqlite, capsys):
        import json

        code = main(
            [
                "query", "--sqlite", str(kv_sqlite), "--fd", "R: K -> A",
                "--backend", "sqlite", "--explain", "--json",
                "--query", "EXISTS b . R(x, y, b)",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["route"] == "sqlite"
        assert payload["certain_sql"].startswith("SELECT")

    def test_explain_on_memory_backend(self, kv_sqlite, capsys):
        code = main(
            [
                "query", "--sqlite", str(kv_sqlite), "--fd", "R: K -> A",
                "--backend", "memory", "--explain",
                "--query", "EXISTS b . R(x, y, b)",
            ]
        )
        assert code == 0
        assert "route: memory" in capsys.readouterr().out


@pytest.fixture
def forest_sqlite(tmp_path):
    """R(K, A:number, B) and S(A:number, C) — BOTH dirty — in SQLite."""
    from repro.constraints.fd import FunctionalDependency
    from repro.relational.database import Database
    from repro.relational.instance import RelationInstance
    from repro.relational.schema import RelationSchema
    from repro.relational.sqlite_io import save_database

    r_schema = RelationSchema("R", ["K", "A:number", "B"])
    s_schema = RelationSchema("S", ["A:number", "C"])
    path = tmp_path / "forest.sqlite"
    save_database(
        Database(
            [
                RelationInstance.from_values(
                    r_schema, [("k1", 0, "x"), ("k1", 1, "x"), ("k2", 5, "y")]
                ),
                RelationInstance.from_values(
                    s_schema, [(0, "c0"), (0, "c1"), (5, "c5")]
                ),
            ]
        ),
        path,
        [
            FunctionalDependency.parse("K -> A", "R"),
            FunctionalDependency.parse("A -> C", "S"),
        ],
    )
    return path


FOREST_FDS = ["--fd", "R: K -> A", "--fd", "S: A -> C"]


class TestAnalyzeCommand:
    """Exit codes and ``--json`` for ``repro analyze`` on RA011 shapes:
    key-join forests are informational now, not blocking (exit 0)."""

    def test_forest_shape_exits_zero(self, forest_sqlite, capsys):
        code = main(
            [
                "analyze", "--sqlite", str(forest_sqlite), *FOREST_FDS,
                "--query", "EXISTS b . R(x, y, b) AND S(y, c)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan: forest" in out
        assert "sqlite: sqlite" in out
        assert "RA011" in out
        assert "RA201" not in out

    def test_forest_shape_json(self, forest_sqlite, capsys):
        import json

        code = main(
            [
                "analyze", "--sqlite", str(forest_sqlite), *FOREST_FDS,
                "--json",
                "--query", "EXISTS b . R(x, y, b) AND S(y, c)",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"] == "forest"
        assert payload["expected_last_routes"]["sqlite"] == "sqlite"
        codes = [d["code"] for d in payload["diagnostics"]]
        assert any(c.startswith("RA011") for c in codes)
        assert not any(d["blocks"] for d in payload["diagnostics"])

    def test_isolated_trees_are_informational(self, forest_sqlite, capsys):
        import json

        code = main(
            [
                "analyze", "--sqlite", str(forest_sqlite), *FOREST_FDS,
                "--json",
                "--query", "EXISTS b . R(x, y, b) AND S(5, c)",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"] == "forest"
        ra011 = [
            d for d in payload["diagnostics"] if d["code"].startswith("RA011")
        ]
        assert ra011 and "independent dirty atoms" in ra011[0]["message"]

    def test_non_key_join_still_exits_three(self, forest_sqlite, capsys):
        import json

        code = main(
            [
                "analyze", "--sqlite", str(forest_sqlite), *FOREST_FDS,
                "--json",
                "--query", "EXISTS a, c . R(x, a, b) AND S(c, b)",
            ]
        )
        assert code == 3
        payload = json.loads(capsys.readouterr().out)
        codes = [d["code"] for d in payload["diagnostics"]]
        assert any(c.startswith("RA201") for c in codes)
        assert payload["expected_last_routes"]["sqlite"].startswith("fallback")


class TestServeBackendFlag:
    def test_no_pushdown_conflicts_with_pushdown_backends(self, mgr_csv):
        for backend in ("sqlite", "prefsql"):
            with pytest.raises(SystemExit, match="--no-pushdown"):
                main(
                    [
                        "serve", "--csv", str(mgr_csv), "--fd", MGR_FDS[0],
                        "--backend", backend, "--no-pushdown", "--stdio",
                    ]
                )
