"""Sharded parallel execution of repair-space query evaluation.

Repairs are maximal independent sets of the conflict graph, and those
factor through its connected components: every repair is the union of
the conflict-free base (singleton components) with exactly one *repair
fragment* per conflicted component.  A :class:`ShardPlan` captures that
product structure — the base row set plus one fragment list per
component, in the exact order the serial engines enumerate — so the
repair space becomes an addressable integer range ``[0, total)`` under
the mixed-radix encoding of :func:`itertools.product` (last component
varies fastest).

Parallel evaluation shards that range into contiguous chunks executed
by a :mod:`multiprocessing` pool.  Task payloads are pickle-safe by
construction: fragments are transmitted as index tuples into a shared
row table (the component content fingerprints the incremental caches
key on), and :class:`~repro.relational.rows.Row` itself reconstructs
through its schema on unpickle.  Workers rebuild each repair from its
index, evaluate with the same indexed (or ``naive``) evaluator the
serial engines use, and return mergeable partials:

* closed queries — (considered, satisfying, first-falsifying index);
* open queries — (considered, certain ∩, possible ∪).

The merge is deterministic: counts add, answer sets intersect/union
(orderless), and the counterexample is the repair at the *smallest*
falsifying index — i.e. the first one the serial stream would have
seen.  ``workers=1`` executes the same shard code in-process, so the
parallel path is exercised (and differentially testable) without a
pool.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.constraints.conflict_graph import ConflictGraph
from repro.core.cleaning import all_cleaning_results
from repro.core.families import Family
from repro.core.optimality import (
    globally_optimal_repairs,
    is_locally_optimal,
    is_semi_globally_optimal,
)
from repro.obs import REGISTRY, Span, current_tracer, trace
from repro.priorities.priority import Priority
from repro.query.ast import Formula
from repro.query.evaluator import answers as evaluate_answers
from repro.query.evaluator import evaluate
from repro.relational.domain import Value
from repro.relational.rows import Row
from repro.repairs.enumerate import _component_repairs

Repair = FrozenSet[Row]

#: Contiguous chunks handed to each worker; more than one per worker
#: smooths imbalance between cheap and expensive repairs.
_CHUNKS_PER_WORKER = 4


def default_workers() -> int:
    """Worker count used when ``parallel=True``-style callers ask for
    "as many as the hardware allows"."""
    return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# Shard plans: the repair space as a product of per-component fragments
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """The preferred-repair space factored for sharding.

    ``base`` holds the rows present in every repair; ``fragments`` is
    one tuple of repair fragments per conflicted component, listed in
    the exact order serial enumeration visits them, so the repair at
    product index ``i`` is the serial stream's ``i``-th repair.
    """

    base: FrozenSet[Row]
    fragments: Tuple[Tuple[Repair, ...], ...]

    @property
    def total(self) -> int:
        """Number of repairs in the product space."""
        count = 1
        for options in self.fragments:
            count *= len(options)
        return count

    def repair_at(self, index: int) -> Repair:
        """The repair at one product index (mixed-radix decode)."""
        return _assemble(self.base, self.fragments, index)


def _assemble(
    base: FrozenSet[Row],
    fragments: Sequence[Tuple[Repair, ...]],
    index: int,
) -> Repair:
    parts: List[Repair] = []
    for options in reversed(fragments):
        index, position = divmod(index, len(options))
        parts.append(options[position])
    return base.union(*parts) if parts else base


def shard_plan(
    graph: ConflictGraph, priority: Priority, family: Family
) -> ShardPlan:
    """Factor a family's preferred repairs into a :class:`ShardPlan`.

    Every preferred family decomposes across connected components
    (see :meth:`repro.incremental.cache.ComponentRepairCache.
    preferred_fragments`): witnesses of local/semi-global failure are
    confined to one component, ≪-lifting compares inside components,
    and Algorithm 1 steps in distinct components commute.  Fragments
    are produced in :func:`~repro.repairs.enumerate.enumerate_repairs`
    order and filtered per component, which preserves the serial
    stream order for the streaming families (Rep, L, S): filtering a
    lexicographic product coordinate-wise yields the product of the
    filtered coordinate lists in the same lexicographic order.
    """
    fixed: List[Row] = []
    fragment_lists: List[Tuple[Repair, ...]] = []
    for component in graph.connected_components():
        if len(component) == 1:
            fixed.extend(component)
            continue
        options = _component_repairs(graph, component, pivoting=True)
        if family is not Family.REP:
            local = priority.restricted_to(component)
            if family is Family.LOCAL:
                options = [f for f in options if is_locally_optimal(f, local)]
            elif family is Family.SEMI_GLOBAL:
                options = [
                    f for f in options if is_semi_globally_optimal(f, local)
                ]
            elif family is Family.GLOBAL:
                options = list(globally_optimal_repairs(local, options))
            elif family is Family.COMMON:
                options = list(all_cleaning_results(local))
            else:  # pragma: no cover - exhaustive enum
                raise ValueError(f"unknown family {family!r}")
        fragment_lists.append(tuple(options))
    return ShardPlan(frozenset(fixed), tuple(fragment_lists))


def plan_from_fragments(
    fragments: Sequence[Sequence[Repair]],
    base: FrozenSet[Row] = frozenset(),
) -> ShardPlan:
    """A :class:`ShardPlan` over explicit fragment lists.

    Used by the incremental engine (whose per-component fragment table
    already exists) and by callers sharding a flat repair list (pass it
    as a single pseudo-component)."""
    return ShardPlan(base, tuple(tuple(options) for options in fragments))


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Task payload: (base, fragments, formula, variables|None, start, stop,
#: naive, stop_on_false, traced).  Everything in it pickles: rows
#: reconstruct through their schema, formulas are frozen dataclasses.
_Task = Tuple[
    FrozenSet[Row],
    Tuple[Tuple[Repair, ...], ...],
    Formula,
    Optional[Tuple[str, ...]],
    int,
    int,
    bool,
    bool,
    bool,
]


def _run_shard(task: _Task):
    """Evaluate one contiguous index range of the repair space.

    Module-level so it imports under ``spawn`` start methods; returns
    ``(considered, satisfying, first_false, elapsed, span)`` for closed
    queries and ``(considered, certain, possible, elapsed, span)`` for
    open ones.  ``elapsed`` is the shard's own wall time: workers run
    in separate processes and cannot write the parent's metrics
    registry, so durations travel home with the partials and the merge
    records them.  When the parent was tracing (``traced``), the shard
    runs its own tracer and ``span`` is the finished tree in
    :meth:`~repro.obs.tracing.Span.to_dict` form — a pickle-safe dict
    the parent grafts under its fan-out span; otherwise ``span`` is
    None.
    """
    (
        base, fragments, formula, variables,
        start, stop, naive, stop_on_false, traced,
    ) = task
    if not traced:
        return _eval_shard(
            base, fragments, formula, variables, start, stop, naive,
            stop_on_false,
        ) + (None,)
    with trace("shard") as tracer:
        tracer.annotate(start=start, stop=stop, pid=os.getpid())
        partial = _eval_shard(
            base, fragments, formula, variables, start, stop, naive,
            stop_on_false,
        )
        tracer.annotate(considered=partial[0])
    return partial + (tracer.root.to_dict(),)


def _eval_shard(
    base: FrozenSet[Row],
    fragments: Tuple[Tuple[Repair, ...], ...],
    formula: Formula,
    variables: Optional[Tuple[str, ...]],
    start: int,
    stop: int,
    naive: bool,
    stop_on_false: bool,
):
    shard_started = time.perf_counter()
    if variables is None:
        considered = satisfying = 0
        first_false: Optional[int] = None
        for index in range(start, stop):
            repair = _assemble(base, fragments, index)
            considered += 1
            if evaluate(formula, repair, naive=naive):
                satisfying += 1
            elif first_false is None:
                first_false = index
                if stop_on_false:
                    break
        elapsed = time.perf_counter() - shard_started
        return considered, satisfying, first_false, elapsed
    certain: Optional[FrozenSet[Tuple[Value, ...]]] = None
    possible: FrozenSet[Tuple[Value, ...]] = frozenset()
    considered = 0
    for index in range(start, stop):
        repair = _assemble(base, fragments, index)
        considered += 1
        result = evaluate_answers(formula, repair, variables, naive=naive)
        certain = result if certain is None else certain & result
        possible = possible | result
    elapsed = time.perf_counter() - shard_started
    return considered, certain, possible, elapsed


# ---------------------------------------------------------------------------
# Pool management
# ---------------------------------------------------------------------------

_POOLS: Dict[int, "multiprocessing.pool.Pool"] = {}


def _pool(workers: int) -> "multiprocessing.pool.Pool":
    """A lazily created, process-wide pool per worker count.

    Pools are reused across calls (fork/spawn cost is paid once per
    engine lifetime, not per query) and torn down at interpreter exit.
    """
    pool = _POOLS.get(workers)
    if pool is None:
        # Never plain fork: the first pool is often created lazily from
        # a broker/HTTP request thread, and forking a multi-threaded
        # process can inherit locks mid-acquisition.  forkserver forks
        # from a clean helper process; spawn is the portable fallback.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "forkserver" if "forkserver" in methods else "spawn"
        )
        pool = context.Pool(processes=workers)
        if not _POOLS:
            atexit.register(shutdown_pools)
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Terminate every cached worker pool (idempotent)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.terminate()
        pool.join()


def _chunks(total: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges covering ``[0, total)``."""
    count = min(total, max(1, workers) * _CHUNKS_PER_WORKER)
    size, leftover = divmod(total, count)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for position in range(count):
        stop = start + size + (1 if position < leftover else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def _map_tasks(tasks: List[_Task], workers: int) -> List:
    if workers <= 1 or len(tasks) == 1:
        return [_run_shard(task) for task in tasks]
    return _pool(workers).map(_run_shard, tasks)


# ---------------------------------------------------------------------------
# Public execution surface
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClosedMerge:
    """Deterministic merge of closed-query shard partials."""

    considered: int
    satisfying: int
    counterexample: Optional[Repair]


@dataclass(frozen=True)
class OpenMerge:
    """Deterministic merge of open-query shard partials."""

    considered: int
    certain: FrozenSet[Tuple[Value, ...]]
    possible: FrozenSet[Tuple[Value, ...]]


def _record_shards(durations: List[float]) -> None:
    """Record per-shard wall times and the fan-out's merge skew.

    Skew is ``max - min`` shard duration within one fan-out: the time
    the merge spends waiting on the slowest shard after the fastest
    finished — the load-imbalance signal for the future
    Synchrobench-style sweep.
    """
    if not REGISTRY.enabled or not durations:
        return
    shard_seconds = REGISTRY.histogram(
        "repro_shard_seconds", "Per-shard evaluation wall time"
    )
    for duration in durations:
        shard_seconds.observe(duration)
    REGISTRY.histogram(
        "repro_merge_skew_seconds",
        "Slowest minus fastest shard duration per fan-out",
    ).observe(max(durations) - min(durations))
    REGISTRY.counter(
        "repro_fanouts_total", "Sharded parallel fan-outs executed"
    ).inc()


def _graft_shards(results: List) -> None:
    """Attach shipped shard span trees under the caller's open span.

    Each traced shard returns its finished span tree as a dict (the
    pickle-safe wire format); rebuilt here and grafted in shard order,
    the parent's ``shard-fan-out`` span gains one ``shard`` child per
    chunk — making merge skew attributable to a specific index range
    and worker pid.
    """
    tracer = current_tracer()
    if tracer is None:
        return
    for result in results:
        payload = result[4]
        if payload is not None:
            tracer.graft(Span.from_dict(payload))


def _tasks_for(
    plan: ShardPlan,
    formula: Formula,
    variables: Optional[Tuple[str, ...]],
    workers: int,
    naive: bool,
    stop_on_false: bool,
) -> List[_Task]:
    traced = current_tracer() is not None
    return [
        (
            plan.base,
            plan.fragments,
            formula,
            variables,
            start,
            stop,
            naive,
            stop_on_false,
            traced,
        )
        for start, stop in _chunks(plan.total, workers)
    ]


def run_closed(
    plan: ShardPlan,
    formula: Formula,
    workers: int = 1,
    naive: bool = False,
    stop_on_false: bool = False,
) -> ClosedMerge:
    """Closed-query verdict counts over the sharded repair space.

    With ``stop_on_false`` each shard abandons its range at the first
    falsifying repair (counts are then lower bounds — enough for the
    boolean certainty check); otherwise counts are exact and the
    counterexample is the serial stream's first falsifier.
    """
    total = plan.total
    if total == 0:
        return ClosedMerge(0, 0, None)
    results = _map_tasks(
        _tasks_for(plan, formula, None, workers, naive, stop_on_false), workers
    )
    _graft_shards(results)
    _record_shards([result[3] for result in results])
    considered = sum(result[0] for result in results)
    satisfying = sum(result[1] for result in results)
    falsifiers = [result[2] for result in results if result[2] is not None]
    counterexample = (
        plan.repair_at(min(falsifiers)) if falsifiers else None
    )
    return ClosedMerge(considered, satisfying, counterexample)


def run_open(
    plan: ShardPlan,
    formula: Formula,
    variables: Tuple[str, ...],
    workers: int = 1,
    naive: bool = False,
) -> OpenMerge:
    """Certain/possible answer sets over the sharded repair space."""
    total = plan.total
    if total == 0:
        return OpenMerge(0, frozenset(), frozenset())
    results = _map_tasks(
        _tasks_for(plan, formula, tuple(variables), workers, naive, False),
        workers,
    )
    _graft_shards(results)
    _record_shards([result[3] for result in results])
    considered = 0
    certain: Optional[FrozenSet[Tuple[Value, ...]]] = None
    possible: FrozenSet[Tuple[Value, ...]] = frozenset()
    for shard_considered, shard_certain, shard_possible, _, _ in results:
        if shard_considered == 0:
            continue
        considered += shard_considered
        certain = (
            shard_certain if certain is None else certain & shard_certain
        )
        possible = possible | shard_possible
    return OpenMerge(
        considered, certain if certain is not None else frozenset(), possible
    )


def resolve_workers(parallel: Optional[int]) -> Optional[int]:
    """Normalize an engine's ``parallel`` argument.

    ``None`` keeps the serial code path; ``0`` means "hardware width";
    positive values are taken literally.  Negative values are invalid.
    """
    if parallel is None:
        return None
    if parallel < 0:
        raise ValueError(f"parallel must be >= 0, got {parallel}")
    return parallel or default_workers()
