"""Unit tests for the conjunctive-SQL frontend."""

import pytest

from repro.exceptions import QuerySyntaxError
from repro.query.evaluator import answers, evaluate
from repro.query.sql import parse_sql, sql_to_formula
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema

SCHEMA = RelationSchema("Mgr", ["Name", "Dept", "Salary:number"])
DB = Database.single(
    RelationInstance.from_values(
        SCHEMA,
        [("Mary", "R&D", 40), ("John", "PR", 30), ("Eve", "IT", 40)],
    )
)
ROWS = DB.all_rows()


class TestParseSql:
    def test_structure(self):
        query = parse_sql(
            "SELECT m.Name FROM Mgr m WHERE m.Salary > 30 AND m.Dept = 'R&D'"
        )
        assert query.tables == (("Mgr", "m"),)
        assert len(query.predicates) == 2
        assert not query.is_boolean

    def test_boolean_query(self):
        assert parse_sql("SELECT 1 FROM Mgr m").is_boolean

    def test_alias_defaults_to_relation(self):
        query = parse_sql("SELECT Mgr.Name FROM Mgr")
        assert query.tables == (("Mgr", "Mgr"),)

    def test_as_keyword(self):
        query = parse_sql("SELECT x.Name FROM Mgr AS x")
        assert query.tables == (("Mgr", "x"),)

    def test_star_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_sql("SELECT * FROM Mgr")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_sql("SELECT 1 FROM Mgr m ORDER BY 1")

    def test_quoted_literal_with_escape(self):
        query = parse_sql("SELECT 1 FROM Mgr m WHERE m.Dept = 'it''s'")
        assert query.predicates[0][2] == "it's"


class TestTranslationClosed:
    def test_boolean_becomes_closed_exists(self):
        formula, variables = sql_to_formula(
            "SELECT 1 FROM Mgr m WHERE m.Salary > 35", DB.schema
        )
        assert variables == ()
        assert formula.is_closed
        assert evaluate(formula, ROWS)

    def test_boolean_false(self):
        formula, _ = sql_to_formula(
            "SELECT 1 FROM Mgr m WHERE m.Salary > 99", DB.schema
        )
        assert not evaluate(formula, ROWS)

    def test_self_join(self):
        formula, _ = sql_to_formula(
            "SELECT 1 FROM Mgr a, Mgr b "
            "WHERE a.Salary = b.Salary AND a.Name != b.Name",
            DB.schema,
        )
        assert evaluate(formula, ROWS)


class TestTranslationOpen:
    def test_answers(self):
        formula, variables = sql_to_formula(
            "SELECT m.Name FROM Mgr m WHERE m.Salary = 40", DB.schema
        )
        assert answers(formula, ROWS, variables) == {("Mary",), ("Eve",)}

    def test_join_answers(self):
        formula, variables = sql_to_formula(
            "SELECT a.Name, b.Name FROM Mgr a, Mgr b "
            "WHERE a.Salary > b.Salary",
            DB.schema,
        )
        result = answers(formula, ROWS, variables)
        assert result == {("Mary", "John"), ("Eve", "John")}

    def test_unknown_column_rejected(self):
        with pytest.raises(QuerySyntaxError):
            sql_to_formula("SELECT m.Name FROM Mgr m WHERE m.Bogus = 1", DB.schema)

    def test_duplicate_alias_rejected(self):
        with pytest.raises(QuerySyntaxError):
            sql_to_formula("SELECT m.Name FROM Mgr m, Mgr m", DB.schema)

    def test_unknown_relation_rejected(self):
        from repro.exceptions import UnknownRelationError

        with pytest.raises(UnknownRelationError):
            sql_to_formula("SELECT t.X FROM Team t", DB.schema)
