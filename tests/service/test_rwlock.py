"""Reader-writer lock semantics and broker read concurrency."""

from __future__ import annotations

import threading
import time

from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.datagen.generators import GRID_FDS, grid_instance
from repro.service.broker import RequestBroker
from repro.service.rwlock import ReadWriteLock


class TestReadWriteLock:
    def test_two_readers_overlap(self):
        lock = ReadWriteLock()
        barrier = threading.Barrier(2, timeout=5)
        overlapped = []

        def reader():
            with lock.read():
                overlapped.append(barrier.wait())

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        # Both readers reached the barrier while holding the read lock.
        assert len(overlapped) == 2
        assert lock.concurrent_reads >= 1

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order = []

        def writer():
            with lock.write():
                order.append("write-start")
                time.sleep(0.05)
                order.append("write-end")

        with lock.read():
            thread = threading.Thread(target=writer)
            thread.start()
            time.sleep(0.02)
            order.append("read-held")
        thread.join(timeout=5)
        assert order.index("read-held") < order.index("write-start")
        assert order == ["read-held", "write-start", "write-end"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        release_first_reader = threading.Event()
        second_reader_done = threading.Event()
        sequence = []

        def first_reader():
            with lock.read():
                sequence.append("r1")
                release_first_reader.wait(timeout=5)

        def writer():
            with lock.write():
                sequence.append("w")

        def second_reader():
            with lock.read():
                sequence.append("r2")
            second_reader_done.set()

        reader1 = threading.Thread(target=first_reader)
        reader1.start()
        while "r1" not in sequence:
            time.sleep(0.001)
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        time.sleep(0.02)  # writer is now waiting on the active reader
        reader2 = threading.Thread(target=second_reader)
        reader2.start()
        time.sleep(0.02)
        # Writer preference: the late reader queues behind the writer.
        assert "r2" not in sequence
        release_first_reader.set()
        writer_thread.join(timeout=5)
        reader1.join(timeout=5)
        assert second_reader_done.wait(timeout=5)
        reader2.join(timeout=5)
        assert sequence == ["r1", "w", "r2"]


class TestBrokerReadConcurrency:
    def _broker(self):
        broker = RequestBroker()
        broker.register("grid", grid_instance(3, 2), GRID_FDS)
        return broker

    def test_two_threads_stress_reads(self):
        """Two threads hammer read-only queries; answers stay correct
        and no deadlock or cache corruption occurs."""
        broker = self._broker()
        queries = ["EXISTS y . R(x, y)", "EXISTS x . R(x, y)"]
        reference = {
            query: CqaEngine(grid_instance(3, 2), GRID_FDS).certain_answers(
                query
            )
            for query in queries
        }
        errors = []

        def worker(query):
            try:
                for _ in range(25):
                    result = broker.query(query)
                    assert result.outcome.certain == reference[query].certain
                    assert result.outcome.possible == reference[query].possible
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(query,)) for query in queries
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert broker.stats()["databases"]["grid"]["queries"] >= 2
        broker.close()

    def test_concurrent_reads_counter_reports_overlap(self):
        """Rendezvous two readers inside the read section so the
        overlap is deterministic, then check the stats counter."""
        broker = self._broker()
        barrier = threading.Barrier(2, timeout=10)
        original = RequestBroker._execute

        def rendezvous(self, entry, formula, variables, family):
            barrier.wait()
            return original(self, entry, formula, variables, family)

        RequestBroker._execute = rendezvous
        try:
            threads = [
                threading.Thread(
                    target=broker.query, args=("EXISTS y . R(x, y)",)
                ),
                threading.Thread(
                    target=broker.query, args=("EXISTS x . R(x, y)",)
                ),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
        finally:
            RequestBroker._execute = original
        stats = broker.stats()
        assert stats["concurrent_reads"] >= 1
        assert stats["databases"]["grid"]["concurrent_reads"] >= 1
        broker.close()

    def test_updates_still_exclusive_and_invalidate(self):
        broker = self._broker()
        first = broker.query("EXISTS y . R(x, y)")
        assert first.cached is False
        instance = grid_instance(3, 2)
        row = sorted(instance.rows)[0]
        broker.delete(row)
        after = broker.query("EXISTS y . R(x, y)")
        assert after.cached is False  # the update evicted the entry
        from repro.datagen.generators import GRID_SCHEMA
        from repro.relational.instance import RelationInstance

        remaining = RelationInstance.from_values(
            GRID_SCHEMA,
            [other.values for other in instance.rows if other != row],
        )
        reference = CqaEngine(remaining, GRID_FDS).certain_answers(
            "EXISTS y . R(x, y)"
        )
        assert after.outcome.certain == reference.certain
        assert after.outcome.possible == reference.possible
        broker.close()
