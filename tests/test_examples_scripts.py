"""Smoke tests: the runnable examples execute and print their story.

``complexity_explorer.py`` is exercised by the benchmark suite instead
(its naive-CQA sweep is deliberately slow).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys, argv=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExampleScripts:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "Preferred repairs (G-Rep):" in out
        assert "preferred (G-Rep):     true" in out

    def test_data_integration(self, capsys):
        out = run_example("data_integration.py", capsys, ["3"])
        assert "Repair-space narrowing:" in out
        assert "G-Rep" in out

    def test_hr_cleaning(self, capsys):
        out = run_example("hr_cleaning.py", capsys)
        assert "Ada is at L6                 -> true" in out
        assert "Hana earns exactly 125       -> undetermined" in out

    def test_payroll_aggregates(self, capsys):
        out = run_example("payroll_aggregates.py", capsys)
        assert "SUM(Salary)" in out
        assert "Enumeration cross-check: SUM ranges agree" in out

    def test_service_demo(self, capsys):
        out = run_example("service_demo.py", capsys)
        assert "shared=True" in out
        assert "after revert           cached=True (content-keyed)" in out
        assert "audit after hr update  cached=True" in out
        assert "health: ok" in out
