"""Unit tests for the certain-answer SQL rewriting compiler."""

import sqlite3

import pytest

from repro.backend.rewrite import (
    NotRewritable,
    analyze_query,
    dirty_profile,
)
from repro.constraints.fd import FunctionalDependency
from repro.query.ast import (
    And,
    Atom,
    Comparison,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Var,
)
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.sqlite_io import save_database

R_SCHEMA = RelationSchema("R", ["K", "A:number", "B"])
S_SCHEMA = RelationSchema("S", ["A:number", "C"])
SCHEMA = DatabaseSchema([R_SCHEMA, S_SCHEMA])
FDS = [FunctionalDependency.parse("K -> A", "R")]


def r_atom():
    return Atom("R", [Var("x"), Var("y"), Var("z")])


class TestDirtyProfile:
    def test_single_dependency(self):
        profile = dirty_profile(R_SCHEMA, FDS)
        assert profile.group == ("K",)
        assert profile.classifier == ("A",)

    def test_same_lhs_dependencies_merge(self):
        fds = [
            FunctionalDependency.parse("K -> A", "R"),
            FunctionalDependency.parse("K -> B", "R"),
        ]
        profile = dirty_profile(R_SCHEMA, fds)
        assert profile.group == ("K",)
        assert profile.classifier == ("A", "B")  # schema order

    def test_clean_relation_has_no_profile(self):
        assert dirty_profile(S_SCHEMA, FDS) is None

    def test_rhs_inside_lhs_is_not_violable(self):
        fds = [FunctionalDependency.parse("K, A -> A", "R")]
        assert dirty_profile(R_SCHEMA, fds) is None

    def test_differing_lhs_not_rewritable(self):
        fds = [
            FunctionalDependency.parse("K -> A", "R"),
            FunctionalDependency.parse("B -> A", "R"),
        ]
        with pytest.raises(NotRewritable):
            dirty_profile(R_SCHEMA, fds)

    def test_empty_lhs_groups_whole_relation(self):
        # empty-LHS FD: every pair of rows must agree on A
        fds = [FunctionalDependency((), ("A",), "R")]
        profile = dirty_profile(R_SCHEMA, fds)
        assert profile.group == ()
        assert profile.classifier == ("A",)


class TestFallbackShapes:
    def _reason(self, formula, variables=None):
        decision = analyze_query(formula, SCHEMA, FDS, variables)
        assert not decision.pushed
        return decision.reason

    def test_disjunction(self):
        assert "Or" in self._reason(Exists(["x", "y", "z"], Or([r_atom(), r_atom()])))

    def test_negation(self):
        assert "Not" in self._reason(Exists(["x", "y", "z"], Not(r_atom())))

    def test_universal(self):
        assert "Forall" in self._reason(Forall(["x", "y", "z"], r_atom()))

    def test_implication(self):
        formula = Exists(["x", "y", "z"], Implies(r_atom(), r_atom()))
        assert "Implies" in self._reason(formula)

    def test_pure_comparison(self):
        assert "atom" in self._reason(Comparison("<", 1, 2))

    def test_unsafe_variable(self):
        formula = Exists(["u"], r_atom())
        assert "unsafe" in self._reason(formula)

    def test_shadowed_quantifier(self):
        formula = Exists(["x"], Exists(["x"], Atom("S", [Var("x"), Var("c")])))
        assert "shadows" in self._reason(formula)

    def test_dirty_self_join(self):
        formula = Exists(
            ["x", "y", "z", "y2", "z2"],
            And([r_atom(), Atom("R", [Var("x"), Var("y2"), Var("z2")])]),
        )
        assert "more than one atom" in self._reason(formula)

    def test_two_dirty_relations_key_join_compiles_as_forest(self):
        # Both dirty atoms share the key variable x — a C_forest star,
        # compiled since the multi-dirty emission landed.
        schema = DatabaseSchema(
            [R_SCHEMA, RelationSchema("T", ["K", "A:number"])]
        )
        fds = FDS + [FunctionalDependency.parse("K -> A", "T")]
        formula = Exists(
            ["x", "y", "z", "w"],
            And([r_atom(), Atom("T", [Var("x"), Var("w")])]),
        )
        decision = analyze_query(formula, schema, fds)
        assert decision.pushed
        assert decision.plan.kind == "forest"
        assert "C_forest" in decision.plan.description

    def test_two_dirty_relations_non_key_join_falls_back(self):
        # The shared variable lands in T's non-key position: repair
        # choices correlate outside any key path.
        schema = DatabaseSchema(
            [R_SCHEMA, RelationSchema("T", ["K", "A:number"])]
        )
        fds = FDS + [FunctionalDependency.parse("K -> A", "T")]
        formula = Exists(
            ["x", "y", "z", "w"],
            And([r_atom(), Atom("T", [Var("w"), Var("y")])]),
        )
        decision = analyze_query(formula, schema, fds)
        assert not decision.pushed
        assert "repair choices interact" in decision.reason


class TestStaticallyEmptyPlans:
    def _plan(self, formula, variables=None):
        decision = analyze_query(formula, SCHEMA, FDS, variables)
        assert decision.pushed
        return decision.plan

    def test_mixed_domain_join_variable(self):
        # y binds both a number column (R.A) and a name column (S.C).
        formula = Exists(
            ["x", "y", "z"],
            And([r_atom(), Atom("S", [Var("y"), Var("y")])]),
        )
        assert self._plan(formula).kind == "empty"

    def test_constant_domain_mismatch(self):
        formula = Exists(["x", "z"], Atom("R", [Var("x"), "one", Var("z")]))
        assert self._plan(formula).kind == "empty"

    def test_cross_domain_equality(self):
        formula = Exists(
            ["x", "y", "z"], And([r_atom(), Comparison("=", Var("x"), 1)])
        )
        assert self._plan(formula).kind == "empty"

    def test_order_comparison_on_names(self):
        formula = Exists(
            ["x", "y", "z"], And([r_atom(), Comparison("<", Var("x"), Var("z"))])
        )
        assert self._plan(formula).kind == "empty"

    def test_cross_domain_inequality_is_dropped(self):
        formula = And([r_atom(), Comparison("!=", Var("x"), 1)])
        plan = self._plan(formula)
        assert plan.kind == "dirty"
        # the vacuously true comparison must not reach the SQL
        assert "<>" not in plan.certain_sql

    def test_empty_plan_runs_to_empty_sets(self):
        formula = Exists(["x", "z"], Atom("R", [Var("x"), "one", Var("z")]))
        plan = self._plan(formula)
        result = plan.run(sqlite3.connect(":memory:"))
        assert result.certain == frozenset()
        assert result.possible == frozenset()


class TestPlanExecution:
    @pytest.fixture
    def connection(self):
        connection = sqlite3.connect(":memory:")
        db = Database(
            [
                RelationInstance.from_values(
                    R_SCHEMA,
                    [
                        ("k1", 0, "x"),
                        ("k1", 1, "x"),  # two classes: nothing certain for k1
                        ("k2", 5, "y"),
                        ("k2", 5, "z"),  # one class of two rows: certain
                        ("k3", 7, "w"),
                    ],
                ),
                RelationInstance.from_values(S_SCHEMA, [(5, "c5"), (7, "c7")]),
            ]
        )
        save_database(db, connection, FDS)
        yield connection
        connection.close()

    def test_open_dirty_plan(self, connection):
        formula = Exists(["z"], Atom("R", [Var("x"), Var("y"), Var("z")]))
        plan = analyze_query(formula, SCHEMA, FDS).plan
        assert plan.kind == "dirty"
        result = plan.run(connection)
        assert result.certain == frozenset({("k2", 5), ("k3", 7)})
        assert result.possible == frozenset(
            {("k1", 0), ("k1", 1), ("k2", 5), ("k3", 7)}
        )

    def test_boolean_plan_uses_nullary_tuple(self, connection):
        certain_true = Exists(["k", "a", "b"], r_k_a_b_with(">= 1"))
        plan = analyze_query(certain_true, SCHEMA, FDS).plan
        assert plan.is_boolean
        result = plan.run(connection)
        assert result.certain == frozenset({()})

    def test_join_with_clean_relation(self, connection):
        formula = Exists(
            ["z", "c"],
            And(
                [
                    Atom("R", [Var("x"), Var("y"), Var("z")]),
                    Atom("S", [Var("y"), Var("c")]),
                ]
            ),
        )
        plan = analyze_query(formula, SCHEMA, FDS).plan
        result = plan.run(connection)
        assert result.certain == frozenset({("k2", 5), ("k3", 7)})

    def test_clean_plan_certain_equals_possible(self, connection):
        formula = Atom("S", [Var("a"), Var("c")])
        plan = analyze_query(formula, SCHEMA, FDS).plan
        assert plan.kind == "clean"
        result = plan.run(connection)
        assert result.certain == result.possible == frozenset(
            {(5, "c5"), (7, "c7")}
        )

    def test_explicit_variable_order_and_projection(self, connection):
        formula = Exists(["z"], Atom("R", [Var("x"), Var("y"), Var("z")]))
        plan = analyze_query(formula, SCHEMA, FDS, variables=("y",)).plan
        result = plan.run(connection)
        assert result.certain == frozenset({(5,), (7,)})


def r_k_a_b_with(op_value: str):
    op, value = op_value.split()
    return And(
        [
            Atom("R", [Var("k"), Var("a"), Var("b")]),
            Comparison(op, Var("a"), int(value)),
        ]
    )
