"""Algorithm 1 — priority-driven database cleaning (paper Section 2.2).

The algorithm repeatedly applies the winnow operator: it picks any
currently-undominated tuple, commits to it, and discards its conflict
neighbourhood, until nothing is left::

    r' ← ∅
    while ω≻(r) ≠ ∅:
        choose any x ∈ ω≻(r)
        r' ← r' ∪ {x}
        r  ← r \\ ({x} ∪ n(x))
    return r'

Proposition 1: for a *total* priority the outcome is one unique repair
regardless of the choices.  For partial priorities different choice
sequences may produce different repairs; the set of all possible
outcomes is exactly the family of *common repairs* ``C-Rep``
(Proposition 7), enumerated here with memoization on the residual
tuple set.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
)

from repro.constraints.conflict_graph import ConflictGraph
from repro.exceptions import CleaningError
from repro.priorities.priority import Priority
from repro.priorities.winnow import winnow
from repro.relational.rows import Row, sorted_rows
from repro.repairs.enumerate import repair_sort_key

#: A chooser receives the winnow set (deterministically ordered) and
#: returns the tuple to commit next.
Chooser = Callable[[Sequence[Row]], Row]


def _first(candidates: Sequence[Row]) -> Row:
    return candidates[0]


def clean(
    priority: Priority,
    chooser: Optional[Chooser] = None,
    start: Optional[AbstractSet[Row]] = None,
) -> FrozenSet[Row]:
    """Run Algorithm 1 and return the constructed repair.

    ``chooser`` resolves Step 3's "choose any x ∈ ω≻(r)"; the default
    picks the first tuple in deterministic order.  ``start`` restricts
    the run to a subset of the instance (used by the membership check).
    """
    graph = priority.graph
    chooser = chooser or _first
    remaining: Set[Row] = set(graph.vertices if start is None else start)
    result: Set[Row] = set()
    while remaining:
        undominated = winnow(priority, remaining)
        if not undominated:
            raise CleaningError(
                "winnow returned no tuple on a nonempty set; "
                "the priority relation must be cyclic"
            )
        candidate = chooser(sorted_rows(undominated))
        if candidate not in undominated:
            raise CleaningError(
                f"chooser returned {candidate!r}, which is not in the winnow set"
            )
        result.add(candidate)
        remaining -= graph.vicinity(candidate)
    return frozenset(result)


def all_cleaning_results(
    priority: Priority, memoized: bool = True
) -> List[FrozenSet[Row]]:
    """Every repair obtainable from Algorithm 1 over all choice sequences.

    By Proposition 7 this is exactly ``C-Rep``.  With ``memoized=True``
    (default) the search collapses states that share the same residual
    tuple set; the naive variant re-explores them (ablation ABL2).
    """
    graph = priority.graph
    memo: Dict[FrozenSet[Row], FrozenSet[FrozenSet[Row]]] = {}

    def outcomes(remaining: FrozenSet[Row]) -> FrozenSet[FrozenSet[Row]]:
        if not remaining:
            return frozenset({frozenset()})
        if memoized and remaining in memo:
            return memo[remaining]
        undominated = winnow(priority, remaining)
        if not undominated:
            raise CleaningError(
                "winnow returned no tuple on a nonempty set; "
                "the priority relation must be cyclic"
            )
        collected: Set[FrozenSet[Row]] = set()
        for choice in sorted_rows(undominated):
            for rest in outcomes(remaining - graph.vicinity(choice)):
                collected.add(rest | {choice})
        result = frozenset(collected)
        if memoized:
            memo[remaining] = result
        return result

    return sorted(outcomes(graph.vertices), key=repair_sort_key)


def is_common_repair(candidate: AbstractSet[Row], priority: Priority) -> bool:
    """C-repair checking in PTIME (Corollary 2).

    Simulates Algorithm 1 with Step-3 choices restricted to
    ``ω≻(r) ∩ r'`` (Proposition 7): the candidate is a common repair iff
    the simulation can always proceed and reconstructs it exactly.
    """
    graph = priority.graph
    candidate = frozenset(candidate)
    if not candidate <= graph.vertices:
        return False
    remaining: Set[Row] = set(graph.vertices)
    chosen: Set[Row] = set()
    while remaining:
        undominated = winnow(priority, remaining)
        if not undominated:
            raise CleaningError(
                "winnow returned no tuple on a nonempty set; "
                "the priority relation must be cyclic"
            )
        allowed = undominated & candidate
        if not allowed:
            return False
        choice = sorted_rows(allowed)[0]
        chosen.add(choice)
        remaining -= graph.vicinity(choice)
    return chosen == candidate
