"""Stdlib-only serving front ends for the request broker.

Two transports share one :class:`ServiceFrontEnd` (a JSON codec over a
:class:`~repro.service.broker.RequestBroker`):

* **JSON over HTTP** — a :class:`ThreadingHTTPServer` with
  ``POST /query`` (single request or batch), ``POST /update``
  (inserts/deletes), and the operational ``GET /healthz`` /
  ``GET /stats`` / ``GET /metrics`` endpoints (the last serves the
  process metrics registry in Prometheus text exposition format), plus
  the flight-recorder debug surface: ``GET /debug/queries`` (recent or
  slowest retained queries, filterable by ``route`` / ``min_ms`` /
  ``limit``) and ``GET /debug/queries/<trace_id>`` (one record with its
  full span tree);
* **JSON lines over stdio** — one request object per input line, one
  response object per output line (``repro serve --stdio``), for
  driving the service from a pipe or a supervisor.

The front end optionally writes a per-request **access log** (one line
per served query: latency, route, answer cardinality, trace id) to any
text stream; both transports share it because logging happens in
:meth:`ServiceFrontEnd.handle`.  Logged latency is the broker's own
per-request service time (``BrokerResult.seconds``), so every request
in a batch reports what *it* cost, not the batch average.

Everything is standard library (``http.server``, ``json``,
``threading``); concurrency safety comes from the broker's per-database
locks and the thread-safe answer cache.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.core.families import Family
from repro.cqa.answers import ClosedAnswer, OpenAnswers
from repro.exceptions import AdmissionError, ReproError
from repro.obs import RECORDER, REGISTRY, FlightRecorder, observe_process
from repro.relational.rows import Row
from repro.service.broker import BrokerResult, Request, RequestBroker

#: Wire names of the repair families (the CLI's ``--family`` codes).
FAMILY_CODES: Dict[str, Family] = {
    "Rep": Family.REP,
    "L": Family.LOCAL,
    "S": Family.SEMI_GLOBAL,
    "G": Family.GLOBAL,
    "C": Family.COMMON,
}


def _sorted_answers(tuples) -> List[Tuple]:
    """Deterministic listing order for mixed name/number answer tuples."""

    def key(answer):
        return tuple(
            (0, f"{value:020d}") if isinstance(value, int) else (1, str(value))
            for value in answer
        )

    return sorted(tuples, key=key)


class ServiceError(ValueError):
    """A malformed request payload (reported as a 400 / error object)."""


def _parse_family(payload: dict) -> Optional[Family]:
    code = payload.get("family")
    if code is None:
        return None
    family = FAMILY_CODES.get(code)
    if family is None:
        raise ServiceError(
            f"unknown family {code!r} (expected one of {sorted(FAMILY_CODES)})"
        )
    return family


def _parse_request(payload: dict) -> Request:
    if not isinstance(payload, dict):
        raise ServiceError("request must be a JSON object")
    query = payload.get("query")
    if not isinstance(query, str) or not query.strip():
        raise ServiceError("request needs a non-empty 'query' string")
    variables = payload.get("variables")
    if variables is not None:
        variables = tuple(str(name) for name in variables)
    priority = payload.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ServiceError("'priority' must be an integer")
    return Request(
        query=query,
        family=_parse_family(payload),
        variables=variables,
        database=payload.get("database"),
        priority=priority,
        tag=payload.get("tag"),
    )


def encode_result(result: BrokerResult) -> dict:
    """The wire form of one served request."""
    outcome = result.outcome
    body: Dict[str, object] = {
        "database": result.database,
        "engine": result.engine,
        "route": result.route,
        "cached": result.cached,
        "shared": result.shared,
    }
    if result.trace_id is not None:
        body["trace_id"] = result.trace_id
    if result.request.tag is not None:
        body["tag"] = result.request.tag
    if isinstance(outcome, ClosedAnswer):
        body.update(
            kind="closed",
            family=str(outcome.family),
            verdict=outcome.verdict.value,
            repairs_considered=outcome.repairs_considered,
            satisfying=outcome.satisfying,
        )
    else:
        assert isinstance(outcome, OpenAnswers)
        body.update(
            kind="open",
            family=str(outcome.family),
            variables=list(outcome.variables),
            certain=[list(answer) for answer in _sorted_answers(outcome.certain)],
            possible=[
                list(answer) for answer in _sorted_answers(outcome.possible)
            ],
            repairs_considered=outcome.repairs_considered,
        )
    return body


class ServiceFrontEnd:
    """JSON request dispatch over one broker (transport-agnostic).

    ``access_log`` is an optional text stream; when set, every served
    query/batch item appends one line with timestamp, database, route,
    latency, and answer cardinality.  Both transports route through
    :meth:`handle`, so HTTP and stdio requests log identically.
    """

    def __init__(
        self,
        broker: RequestBroker,
        access_log: Optional[IO[str]] = None,
        recorder: Optional[FlightRecorder] = None,
    ) -> None:
        self.broker = broker
        self.started = time.time()
        self.requests_served = 0
        self.access_log = access_log
        self.recorder = recorder if recorder is not None else RECORDER

    # Operations ---------------------------------------------------------------

    def _uptime(self) -> float:
        """One uptime computation shared by /healthz and /stats, so the
        two endpoints cannot disagree within a response cycle."""
        return round(time.time() - self.started, 3)

    def health(self) -> dict:
        from repro import __version__

        return {
            "status": "ok",
            "version": __version__,
            "databases": list(self.broker.databases),
            "backends": {
                name: self.broker.backend_of(name)
                for name in self.broker.databases
            },
            "uptime_s": self._uptime(),
            "requests_served": self.requests_served,
        }

    def stats(self) -> dict:
        observe_process()
        stats = dict(self.broker.stats())
        stats["requests_served"] = self.requests_served
        stats["uptime_s"] = self._uptime()
        stats["metrics"] = REGISTRY.snapshot()
        stats["recorder"] = self.recorder.summary()
        return stats

    def metrics(self) -> str:
        """The process metrics registry in Prometheus text format.

        Process gauges (RSS, GC, threads) refresh here — pull-model
        sampling, so they are as fresh as the scrape that reads them.
        """
        observe_process()
        return REGISTRY.render()

    def debug_queries(
        self,
        route: Optional[str] = None,
        min_ms: Optional[float] = None,
        limit: Optional[int] = None,
        slowest: bool = False,
    ) -> dict:
        """Retained flight-recorder records (``GET /debug/queries``)."""
        records = self.recorder.records(
            route=route, min_ms=min_ms, limit=limit, slowest=slowest
        )
        return {
            "count": len(records),
            "queries": [record.to_dict() for record in records],
        }

    def debug_query(self, trace_id: str) -> dict:
        """One retained record (``GET /debug/queries/<trace_id>``)."""
        record = self.recorder.get(trace_id)
        if record is None:
            raise ServiceError(f"no recorded query with trace id {trace_id!r}")
        return record.to_dict()

    def _log_access(self, result: BrokerResult) -> None:
        if self.access_log is None:
            return
        outcome = result.outcome
        if isinstance(outcome, ClosedAnswer):
            answers = outcome.verdict.value
        else:
            answers = str(len(outcome.certain))
        stamp = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%S.%f")
        self.access_log.write(
            f"{stamp}Z db={result.database} engine={result.engine} "
            f"route={result.route} family={str(outcome.family)} "
            f"latency_ms={result.seconds * 1e3:.3f} answers={answers} "
            f"cached={int(result.cached)} shared={int(result.shared)} "
            f"trace={result.trace_id or '-'}\n"
        )
        self.access_log.flush()

    def _row_from(self, payload: dict) -> Tuple[Row, Optional[str]]:
        database = payload.get("database")
        engine = self.broker.engine(database)
        relation = payload.get("relation")
        if relation is None:
            names = engine.schema.relation_names
            if len(names) != 1:
                raise ServiceError(
                    "'relation' is required when several relations exist"
                )
            relation = names[0]
        values = payload.get("values")
        if not isinstance(values, list):
            raise ServiceError("'values' must be a list")
        schema = engine.schema.relation(relation)
        return Row(schema, values), database

    def _update(self, payload: dict, op: str) -> dict:
        row, database = self._row_from(payload)
        if op == "insert":
            delta = self.broker.insert(row, database)
            applied = not delta.is_noop
        else:
            delta = self.broker.delete(row, database)
            applied = True
        engine = self.broker.engine(database)
        return {
            "op": op,
            "applied": applied,
            "tuples": engine.graph.vertex_count,
            "conflicts": engine.graph.edge_count,
        }

    def handle(self, payload: dict) -> dict:
        """Serve one decoded JSON payload; errors become error objects."""
        try:
            if not isinstance(payload, dict):
                raise ServiceError("payload must be a JSON object")
            op = payload.get("op", "query")
            if op == "health":
                return self.health()
            if op == "stats":
                return self.stats()
            if op in ("insert", "delete"):
                return self._update(payload, op)
            if op == "batch":
                requests = payload.get("requests")
                if not isinstance(requests, list) or not requests:
                    raise ServiceError("'requests' must be a non-empty list")
                parsed = [_parse_request(entry) for entry in requests]
                results = self.broker.submit(parsed)
                self.requests_served += len(results)
                for result in results:
                    self._log_access(result)
                return {"results": [encode_result(r) for r in results]}
            if op == "query":
                result = self.broker.submit([_parse_request(payload)])[0]
                self.requests_served += 1
                self._log_access(result)
                return encode_result(result)
            if op == "analyze":
                request = _parse_request(payload)
                report = self.broker.analyze(
                    request.query,
                    family=request.family,
                    variables=request.variables,
                    database=request.database,
                )
                body = report.to_dict()
                if request.tag is not None:
                    body["tag"] = request.tag
                return body
            raise ServiceError(f"unknown op {op!r}")
        except AdmissionError as exc:
            # Load shedding, not a malformed request: the "rejected"
            # marker lets HTTP answer 503 (retryable) instead of 400.
            op = payload.get("op", "query") if isinstance(payload, dict) else "?"
            return {"error": str(exc), "op": op, "rejected": True}
        except (ServiceError, ReproError, TypeError, ValueError, KeyError) as exc:
            # Shape errors a type-check in _parse_request missed (e.g. a
            # non-iterable 'variables') must degrade to an error object
            # too — a transport thread dying mid-request would look like
            # a connection reset over HTTP and kill the stdio loop.
            op = payload.get("op", "query") if isinstance(payload, dict) else "?"
            return {"error": str(exc), "op": op}


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the front end (set as ``server.front``)."""

    protocol_version = "HTTP/1.1"

    @property
    def front(self) -> ServiceFrontEnd:
        return self.server.front  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test output and service logs quiet

    def _send(self, status: int, body: dict) -> None:
        encoded = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _send_text(self, status: int, text: str) -> None:
        encoded = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _debug_queries(self, parsed) -> None:
        params = parse_qs(parsed.query)

        def first(name: str) -> Optional[str]:
            values = params.get(name)
            return values[0] if values else None

        try:
            min_ms = float(first("min_ms")) if first("min_ms") else None
            limit = int(first("limit")) if first("limit") else None
        except ValueError as exc:
            self._send(400, {"error": f"bad query parameter: {exc}"})
            return
        self._send(
            200,
            self.front.debug_queries(
                route=first("route"),
                min_ms=min_ms,
                limit=limit,
                slowest=first("order") == "slowest",
            ),
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        path = parsed.path
        if path == "/healthz":
            self._send(200, self.front.health())
        elif path == "/stats":
            self._send(200, self.front.stats())
        elif path == "/metrics":
            self._send_text(200, self.front.metrics())
        elif path == "/debug/queries":
            self._debug_queries(parsed)
        elif path.startswith("/debug/queries/"):
            trace_id = path[len("/debug/queries/"):]
            try:
                self._send(200, self.front.debug_query(trace_id))
            except ServiceError as exc:
                self._send(404, {"error": str(exc)})
        else:
            self._send(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path not in ("/query", "/update", "/analyze"):
            self._send(404, {"error": f"unknown path {self.path!r}"})
            return
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            self._send(400, {"error": f"bad JSON: {exc}"})
            return
        if self.path == "/update" and isinstance(payload, dict):
            payload.setdefault("op", "insert")
        if self.path == "/analyze" and isinstance(payload, dict):
            payload.setdefault("op", "analyze")
        if isinstance(payload, dict) and "requests" in payload:
            payload.setdefault("op", "batch")
        response = self.front.handle(payload)
        if response.get("rejected"):
            status = 503
        elif "error" in response:
            status = 400
        else:
            status = 200
        self._send(status, response)


def make_http_server(
    front: ServiceFrontEnd, host: str = "127.0.0.1", port: int = 8080
) -> ThreadingHTTPServer:
    """A ready-to-run threading HTTP server (``port=0`` picks a free one)."""
    server = ThreadingHTTPServer((host, port), _Handler)
    server.front = front  # type: ignore[attr-defined]
    return server


def serve_stdio(
    front: ServiceFrontEnd,
    input_stream: IO[str],
    output_stream: IO[str],
) -> int:
    """JSON-lines loop: one request per line in, one response per line out.

    Blank lines and ``#`` comments are skipped; malformed JSON yields an
    error object instead of aborting the stream.  Returns 0.
    """
    for raw in input_stream:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            response: dict = {"error": f"bad JSON: {exc}"}
        else:
            response = front.handle(payload)
        output_stream.write(json.dumps(response) + "\n")
        output_stream.flush()
    return 0
