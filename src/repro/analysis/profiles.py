"""Conflict profiles of FD-constrained relations.

Historically these lived in :mod:`repro.backend.rewrite`; they moved
here so the static analyzer, the SQL backend and the preference-aware
engine all consume one definition (``repro.backend.rewrite`` re-exports
them for compatibility).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Set, Tuple

from repro.constraints.fd import FunctionalDependency
from repro.relational.schema import RelationSchema


class NotRewritable(Exception):
    """Internal signal: the query escapes the rewritable fragment."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class DirtyProfile:
    """Conflict structure of one FD-constrained relation.

    ``group`` is the shared left-hand side of all its (violable) FDs;
    ``classifier`` is the union of their right-hand sides minus the
    group.  Two rows conflict iff they agree on ``group`` and differ on
    ``classifier``; a repair keeps, per group, exactly one maximal class
    of rows agreeing on ``classifier``.
    """

    relation: str
    group: Tuple[str, ...]
    classifier: Tuple[str, ...]


def dirty_profile(
    schema: RelationSchema, dependencies: Sequence[FunctionalDependency]
) -> Optional[DirtyProfile]:
    """The relation's conflict profile, or ``None`` when it is clean.

    Raises :class:`NotRewritable` when the relation's dependencies do
    not share a single left-hand side (its repairs then have no
    per-group class structure the rewriting could exploit).
    """
    lhs: Optional[FrozenSet[str]] = None
    classifier: Set[str] = set()
    for dependency in dependencies:
        if not dependency.applies_to(schema.name):
            continue
        dependency.validate_against(schema)
        effective_rhs = dependency.rhs - dependency.lhs
        if not effective_rhs:
            continue  # RHS implied by LHS agreement: never violable
        if lhs is None:
            lhs = dependency.lhs
        elif dependency.lhs != lhs:
            raise NotRewritable(
                f"relation {schema.name!r} has dependencies with differing "
                "left-hand sides; its repairs are not per-group class choices"
            )
        classifier |= effective_rhs
    if lhs is None:
        return None
    order = schema.attribute_names
    return DirtyProfile(
        schema.name,
        tuple(attr for attr in order if attr in lhs),
        tuple(attr for attr in order if attr in classifier),
    )
