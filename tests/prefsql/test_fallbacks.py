"""Fallback-reason regressions: every shape prefsql still rejects.

The engine must fall back — with a stable, human-readable reason — for
exactly the shapes the ROADMAP records as open, and the fallback path
must agree with the in-memory engine bit-for-bit.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.prefsql import PrefSqlCqaEngine
from repro.query.ast import And, Atom, Exists, Forall, Implies, Not, Or, Var
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema
from repro.relational.sqlite_io import save_database

R_SCHEMA = RelationSchema("R", ["K", "A:number", "B"])
MIXED_SCHEMA = RelationSchema(
    "M", ["A:number", "B:number", "C:number", "D:number"]
)
FDS = [
    FunctionalDependency.parse("K -> A", "R"),
    FunctionalDependency.parse("A -> B", "M"),
    FunctionalDependency.parse("C -> D", "M"),
]

R_ROWS = [("k0", 0, "x"), ("k0", 1, "y"), ("k1", 5, "w")]
M_ROWS = [(0, 0, 5, 1), (0, 1, 6, 2)]

x, y, z = Var("x"), Var("y"), Var("z")
k, a, b = Var("k"), Var("a"), Var("b")


def _row(*values) -> Row:
    return Row(R_SCHEMA, values)


PRIORITY = [(_row("k0", 1, "y"), _row("k0", 0, "x"))]


def _database() -> Database:
    return Database(
        [
            RelationInstance.from_values(R_SCHEMA, R_ROWS),
            RelationInstance.from_values(MIXED_SCHEMA, M_ROWS),
        ]
    )


@pytest.fixture
def engine():
    connection = sqlite3.connect(":memory:")
    save_database(_database(), connection, FDS)
    with PrefSqlCqaEngine(connection, FDS, PRIORITY) as built:
        yield built


#: (label, formula, phrase expected in the fallback reason).
REJECTED_SHAPES = [
    (
        "disjunction",
        Exists(["k", "a", "b"], Or([Atom("R", [k, a, b]), Atom("R", [k, a, b])])),
        "non-conjunctive",
    ),
    (
        "negation",
        Exists(["k", "a", "b"], Not(Atom("R", [k, a, b]))),
        "non-conjunctive",
    ),
    (
        "universal",
        Forall(["k", "a", "b"], Implies(Atom("R", [k, a, b]), Atom("R", [k, a, b]))),
        "non-conjunctive",
    ),
    (
        "dirty-self-join",
        Exists(
            ["k", "a", "b", "a2", "b2"],
            And([Atom("R", [k, a, b]), Atom("R", [k, Var("a2"), Var("b2")])]),
        ),
        "more than one atom",
    ),
    (
        "mixed-lhs-relation",
        Exists(["x", "y", "z", "w"], Atom("M", [x, y, z, Var("w")])),
        "differing left-hand sides",
    ),
]


class TestRejectedShapes:
    @pytest.mark.parametrize(
        "label,formula,phrase",
        REJECTED_SHAPES,
        ids=[shape[0] for shape in REJECTED_SHAPES],
    )
    def test_reason_and_fallback_parity(self, engine, label, formula, phrase):
        decision = engine.explain(formula)
        assert not decision.pushed, label
        assert phrase in decision.reason, (label, decision.reason)
        result = engine.answer(formula, Family.COMMON)
        assert engine.last_route == f"fallback: {decision.reason}"
        reference = CqaEngine(_database(), FDS, PRIORITY).answer(
            formula, Family.COMMON
        )
        assert result.verdict is reference.verdict, label


class TestDuplicateRows:
    def test_prioritized_relation_with_duplicates_falls_back(self):
        """Duplicate physical rows make rowid-bound edges ambiguous."""
        connection = sqlite3.connect(":memory:")
        save_database(_database(), connection, FDS)
        connection.execute("INSERT INTO R VALUES ('k0', 0, 'x')")
        engine = PrefSqlCqaEngine(connection, FDS, PRIORITY)
        decision = engine.explain(Exists(["z"], Atom("R", [x, y, z])))
        assert not decision.pushed
        assert "duplicate rows" in decision.reason
        # The fallback engine deduplicates (set semantics) and agrees
        # with the in-memory answer.
        result = engine.certain_answers(
            Exists(["z"], Atom("R", [x, y, z])), family=Family.COMMON
        )
        reference = CqaEngine(_database(), FDS, PRIORITY).certain_answers(
            Exists(["z"], Atom("R", [x, y, z])), family=Family.COMMON
        )
        assert result.certain == reference.certain


class TestPriorityOnMixedLhsRelation:
    def test_queries_elsewhere_still_push(self):
        """A priority on an un-rewritable relation must not poison
        queries that never mention it."""
        winner = Row(MIXED_SCHEMA, (0, 0, 5, 1))
        loser = Row(MIXED_SCHEMA, (0, 1, 6, 2))
        connection = sqlite3.connect(":memory:")
        save_database(_database(), connection, FDS)
        engine = PrefSqlCqaEngine(connection, FDS, [(winner, loser)])
        query = Exists(["z"], Atom("R", [x, y, z]))
        decision = engine.explain(query)
        assert decision.pushed
        assert decision.route == "sqlite"  # R itself carries no edges
        result = engine.certain_answers(query, family=Family.COMMON)
        reference = CqaEngine(
            _database(), FDS, [(winner, loser)]
        ).certain_answers(query, family=Family.COMMON)
        assert result.certain == reference.certain
        assert result.possible == reference.possible
