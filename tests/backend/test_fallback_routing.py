"""Routing coverage: every documented un-rewritable shape falls back.

ROADMAP records the query shapes the SQLite pushdown cannot rewrite:
disjunction, negation, universal quantification, implication, self-joins
of a dirty relation, non-key joins of two dirty relations (key-join
forests push since the C_forest compilation), relations whose FDs
have differing left-hand sides, unsafe (active-domain) variables, pure
active-domain queries, shadowed quantifiers, and any declared priority.
Each gets a test asserting (a) ``explain()`` reports no plan with the
right reason, (b) ``last_route`` records that reason after execution,
and (c) the fallback's answers match an independent in-memory engine.
"""

import sqlite3

import pytest

from repro.backend import SqlCqaEngine
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.query.ast import (
    And,
    Atom,
    Comparison,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Var,
)
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.relational.sqlite_io import save_database

R_SCHEMA = RelationSchema("R", ["K", "A:number", "B"])
S_SCHEMA = RelationSchema("S", ["A:number", "C"])
FDS = [FunctionalDependency.parse("K -> A", "R")]
#: Both relations dirty: joins between them cannot be rewritten.
BOTH_DIRTY_FDS = FDS + [FunctionalDependency.parse("A -> C", "S")]
#: R constrained by FDs whose left-hand sides differ.
MULTI_LHS_FDS = [
    FunctionalDependency.parse("K -> A", "R"),
    FunctionalDependency.parse("B -> A", "R"),
]

R_ROWS = [("k1", 0, "u"), ("k1", 1, "u"), ("k2", 5, "v"), ("k3", 7, "w")]
S_ROWS = [(0, "c0"), (1, "c1"), (5, "c0")]

k, a, b, v, w = Var("k"), Var("a"), Var("b"), Var("v"), Var("w")


def _database():
    return Database(
        [
            RelationInstance.from_values(R_SCHEMA, R_ROWS),
            RelationInstance.from_values(S_SCHEMA, S_ROWS),
        ]
    )


@pytest.fixture
def database():
    return _database()


def _engine(dependencies, priority=()):
    connection = sqlite3.connect(":memory:")
    save_database(_database(), connection, dependencies)
    return SqlCqaEngine(connection, dependencies, priority)


#: (shape id, query, FDs, phrase the recorded reason must contain).
UNREWRITABLE_SHAPES = [
    (
        "disjunction",
        Exists(["k", "a", "b"], Or([Atom("R", [k, a, b]), Atom("R", [k, a, b])])),
        FDS,
        "non-conjunctive construct Or",
    ),
    (
        "negation",
        Exists(["k", "a", "b"], And([Atom("R", [k, a, b]), Not(Atom("S", [a, "c0"]))])),
        FDS,
        "non-conjunctive construct Not",
    ),
    (
        "universal-quantification",
        Forall(["k", "a", "b"], Implies(Atom("R", [k, a, b]), Comparison("<", a, 9))),
        FDS,
        "non-conjunctive construct Forall",
    ),
    (
        "implication",
        Implies(Exists(["b"], Atom("R", ["k1", 0, b])), Exists(["b"], Atom("R", ["k2", 5, b]))),
        FDS,
        "non-conjunctive construct Implies",
    ),
    (
        "dirty-self-join",
        Exists(
            ["k", "a", "b", "a2", "b2"],
            And([Atom("R", [k, a, b]), Atom("R", [k, Var("a2"), Var("b2")])]),
        ),
        FDS,
        "more than one atom over inconsistent relation(s) ['R']",
    ),
    (
        # A key join of two dirty relations is C_forest and pushes; the
        # fallback shape is the join through S's NON-key column C.
        "two-dirty-non-key-join",
        Exists(
            ["k", "a", "b", "c"],
            And([Atom("R", [k, a, b]), Atom("S", [Var("c"), b])]),
        ),
        BOTH_DIRTY_FDS,
        "more than one atom over inconsistent relation(s) ['R', 'S']",
    ),
    (
        "differing-fd-lhs",
        Exists(["k", "a", "b"], Atom("R", [k, a, b])),
        MULTI_LHS_FDS,
        "differing left-hand sides",
    ),
    (
        "unsafe-variable",
        Exists(["k", "a", "b", "u"], And([Atom("R", [k, a, b]), Comparison("=", Var("u"), Var("u"))])),
        FDS,
        "unsafe variable(s) ['u']",
    ),
    (
        "pure-active-domain",
        Exists(["u"], Comparison("=", Var("u"), Var("u"))),
        FDS,
        "no relational atom",
    ),
    (
        "shadowed-quantifier",
        Exists(["k"], Exists(["k", "a", "b"], Atom("R", [k, a, b]))),
        FDS,
        "shadows an outer variable",
    ),
]


class TestDocumentedFallbackShapes:
    @pytest.mark.parametrize(
        "label,query,dependencies,phrase",
        UNREWRITABLE_SHAPES,
        ids=[shape[0] for shape in UNREWRITABLE_SHAPES],
    )
    def test_shape_records_reason_and_matches_memory(
        self, label, query, dependencies, phrase, database
    ):
        with _engine(dependencies) as engine:
            decision = engine.explain(query)
            assert decision.plan is None, label
            assert phrase in decision.reason, (label, decision.reason)
            verdict = engine.answer(query).verdict
            assert engine.last_route == f"fallback: {decision.reason}", label
        reference = CqaEngine(database, dependencies)
        assert verdict is reference.answer(query).verdict, label

    @pytest.mark.parametrize(
        "label,query,dependencies,phrase",
        UNREWRITABLE_SHAPES,
        ids=[shape[0] for shape in UNREWRITABLE_SHAPES],
    )
    def test_open_variant_also_falls_back(
        self, label, query, dependencies, phrase, database
    ):
        # Strip one leading EXISTS variable (when present) to get an
        # open query of the same shape; the routing must be identical.
        if not isinstance(query, Exists):
            pytest.skip("shape has no existential prefix to open")
        if label == "shadowed-quantifier":
            pytest.skip("opening the outer block removes the shadow")
        rest = query.variables[1:]
        opened = Exists(rest, query.body) if rest else query.body
        with _engine(dependencies) as engine:
            result = engine.certain_answers(opened)
            assert engine.last_route.startswith("fallback:"), label
            assert phrase in engine.last_route, (label, engine.last_route)
        reference = CqaEngine(database, dependencies).certain_answers(opened)
        assert result.certain == reference.certain, label
        assert result.possible == reference.possible, label


class TestPriorityFallback:
    def test_declared_priority_forces_fallback(self, database):
        winner = RelationInstance.from_values(R_SCHEMA, R_ROWS).row("k1", 1, "u")
        loser = RelationInstance.from_values(R_SCHEMA, R_ROWS).row("k1", 0, "u")
        query = Exists(["b"], Atom("R", [k, a, b]))
        with _engine(FDS, [(winner, loser)]) as engine:
            decision = engine.explain(query)
            assert decision.plan is None
            assert "preference-blind" in decision.reason
            result = engine.certain_answers(query)
            assert engine.last_route == f"fallback: {decision.reason}"
        reference = CqaEngine(database, FDS, [(winner, loser)]).certain_answers(query)
        assert result.certain == reference.certain
        assert result.possible == reference.possible

    def test_no_priority_same_query_is_pushed(self):
        query = Exists(["b"], Atom("R", [k, a, b]))
        with _engine(FDS) as engine:
            engine.certain_answers(query)
            assert engine.last_route == "sqlite"


class TestFallbackRouteBookkeeping:
    def test_route_flips_between_calls(self):
        pushed_query = Exists(["b"], Atom("R", [k, a, b]))
        fallback_query = Exists(
            ["k", "a", "b"], Or([Atom("R", [k, a, b]), Atom("R", [k, a, b])])
        )
        with _engine(FDS) as engine:
            engine.certain_answers(pushed_query)
            assert engine.last_route == "sqlite"
            engine.answer(fallback_query)
            assert engine.last_route.startswith("fallback:")
            engine.certain_answers(pushed_query)
            assert engine.last_route == "sqlite"

    def test_fallback_results_carry_indexed_route(self):
        fallback_query = Exists(
            ["k", "a", "b"], Or([Atom("R", [k, a, b]), Atom("R", [k, a, b])])
        )
        with _engine(FDS) as engine:
            answer = engine.answer(fallback_query)
        assert answer.route == "indexed"  # in-memory engine, indexed path
