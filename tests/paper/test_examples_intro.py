"""Golden tests for Examples 1-3 (the Mgr data-integration story).

Walks the paper's introduction end to end: integrating three consistent
sources yields three conflicts (Example 1); the repairs and the failure
of classic CQA on Q1 (Example 2); incomplete cleaning vs preferred
consistent answers on Q2 (Example 3).
"""

import pytest

from repro.baselines.cleaning import UnresolvedPolicy, clean_database
from repro.constraints.conflicts import edge, find_conflicts, is_consistent
from repro.core.families import Family
from repro.cqa.answers import Verdict
from repro.cqa.engine import CqaEngine
from repro.datagen.paper_instances import (
    Q1_TEXT,
    Q2_TEXT,
    mgr_dependencies,
    mgr_scenario,
    mgr_sources,
)
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query
from repro.relational.database import integrate_sources


class TestExample1:
    def test_sources_are_individually_consistent(self):
        for source in mgr_sources():
            assert is_consistent(source.rows, mgr_dependencies())

    def test_integration_yields_three_conflicts(self):
        scenario = mgr_scenario()
        conflicts = find_conflicts(scenario.instance.rows, scenario.dependencies)
        fd1, fd2 = scenario.dependencies
        assert conflicts == {
            edge(scenario.rows["mary_rd"], scenario.rows["john_rd"]): {fd1},
            edge(scenario.rows["mary_rd"], scenario.rows["mary_it"]): {fd2},
            edge(scenario.rows["john_rd"], scenario.rows["john_pr"]): {fd2},
        }

    def test_q1_true_in_the_inconsistent_instance(self):
        """'The answer to Q1 in r is true but this is misleading.'"""
        scenario = mgr_scenario()
        assert evaluate(parse_query(Q1_TEXT), scenario.instance)

    def test_integrate_sources_helper(self):
        merged = integrate_sources(list(mgr_sources()))
        assert len(merged) == 4


class TestExample2:
    def test_three_repairs(self):
        scenario = mgr_scenario()
        engine = CqaEngine(scenario.instance, scenario.dependencies)
        assert set(engine.repairs()) == {
            scenario.row_set("mary_rd", "john_pr"),   # r1
            scenario.row_set("john_rd", "mary_it"),   # r2
            scenario.row_set("mary_it", "john_pr"),   # r3
        }

    def test_q1_false_in_r1_and_r2(self):
        scenario = mgr_scenario()
        q1 = parse_query(Q1_TEXT)
        assert not evaluate(q1, scenario.row_set("mary_rd", "john_pr"))
        assert not evaluate(q1, scenario.row_set("john_rd", "mary_it"))
        assert evaluate(q1, scenario.row_set("mary_it", "john_pr"))

    def test_true_is_not_a_consistent_answer_to_q1(self):
        scenario = mgr_scenario()
        engine = CqaEngine(scenario.instance, scenario.dependencies)
        assert not engine.is_consistently_true(Q1_TEXT)


class TestExample3:
    def test_cleaning_with_incomplete_information_stays_inconsistent(self):
        scenario = mgr_scenario()
        outcome = clean_database(scenario.priority, UnresolvedPolicy.KEEP)
        assert outcome.kept == scenario.row_set("mary_rd", "john_rd")
        assert not is_consistent(outcome.kept, scenario.dependencies)

    def test_q2_false_in_the_cleaned_database(self):
        scenario = mgr_scenario()
        cleaned = clean_database(scenario.priority).kept
        assert not evaluate(parse_query(Q2_TEXT), cleaned)

    def test_false_is_the_consistent_answer_in_the_cleaned_database(self):
        scenario = mgr_scenario()
        cleaned = scenario.instance.restrict(
            clean_database(scenario.priority).kept
        )
        engine = CqaEngine(cleaned, scenario.dependencies)
        assert engine.answer(Q2_TEXT).verdict is Verdict.FALSE

    def test_q2_undetermined_in_r_classically(self):
        """'Neither false nor true is a consistent answer to Q2 in r.'"""
        scenario = mgr_scenario()
        engine = CqaEngine(scenario.instance, scenario.dependencies)
        assert engine.answer(Q2_TEXT).verdict is Verdict.UNDETERMINED

    def test_preferred_repairs_are_r1_and_r2(self):
        scenario = mgr_scenario()
        engine = CqaEngine(
            scenario.instance,
            scenario.dependencies,
            scenario.priority,
            Family.GLOBAL,
        )
        assert set(engine.repairs()) == {
            scenario.row_set("mary_rd", "john_pr"),
            scenario.row_set("john_rd", "mary_it"),
        }

    @pytest.mark.parametrize(
        "family", [Family.LOCAL, Family.SEMI_GLOBAL, Family.GLOBAL, Family.COMMON]
    )
    def test_true_is_the_preferred_consistent_answer_to_q2(self, family):
        """'True is the preferred consistent answer to Q2.'"""
        scenario = mgr_scenario()
        engine = CqaEngine(
            scenario.instance, scenario.dependencies, scenario.priority, family
        )
        assert engine.answer(Q2_TEXT).verdict is Verdict.TRUE
