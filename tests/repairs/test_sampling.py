"""Unit tests for repair sampling."""

import random

from hypothesis import given, settings

from repro.constraints.conflict_graph import build_conflict_graph
from repro.datagen.generators import GRID_FDS
from repro.datagen.paper_instances import example4_scenario
from repro.repairs.sampling import random_repair, sample_repairs
from tests.conftest import key_instances


class TestRandomRepair:
    @given(key_instances())
    @settings(max_examples=50, deadline=None)
    def test_sample_is_a_repair(self, instance):
        graph = build_conflict_graph(instance, GRID_FDS)
        repair = random_repair(graph, random.Random(7))
        assert graph.is_maximal_independent(repair) or not graph.vertices

    def test_deterministic_with_seed(self):
        graph = build_conflict_graph(example4_scenario(5).instance, GRID_FDS)
        assert random_repair(graph, random.Random(3)) == random_repair(
            graph, random.Random(3)
        )

    def test_diversity_over_seeds(self):
        graph = build_conflict_graph(example4_scenario(6).instance, GRID_FDS)
        samples = {random_repair(graph, random.Random(seed)) for seed in range(20)}
        assert len(samples) > 1


class TestSampleRepairs:
    def test_distinct_sampling_caps_at_space_size(self):
        graph = build_conflict_graph(example4_scenario(2).instance, GRID_FDS)
        distinct = sample_repairs(graph, 50, random.Random(0), distinct=True)
        assert 1 <= len(distinct) <= 4
        assert len(set(distinct)) == len(distinct)

    def test_non_distinct_returns_exact_count(self):
        graph = build_conflict_graph(example4_scenario(3).instance, GRID_FDS)
        assert len(sample_repairs(graph, 10, random.Random(0))) == 10

    def test_distinct_sampling_uses_canonical_listing_order(self):
        from repro.repairs.enumerate import enumerate_repairs, repair_sort_key

        graph = build_conflict_graph(example4_scenario(3).instance, GRID_FDS)
        distinct = sample_repairs(graph, 50, random.Random(1), distinct=True)
        assert distinct == sorted(distinct, key=repair_sort_key)
        # consistent with enumeration: the full sample lists repairs in
        # the same relative order enumerate+sort produces
        everything = sorted(enumerate_repairs(graph), key=repair_sort_key)
        positions = [everything.index(repair) for repair in distinct]
        assert positions == sorted(positions)
