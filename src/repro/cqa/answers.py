"""Answer types for (preferred) consistent query answering.

For a closed query ``Q`` and a family of preferred repairs, the paper
defines ``true`` to be the X-consistent answer when every preferred
repair satisfies ``Q`` (Definition 3).  Symmetrically ``false`` is the
X-consistent answer when no preferred repair satisfies ``Q``; otherwise
the answer is undetermined — the inconsistency leaves both outcomes
possible.  :class:`Verdict` captures this three-valued outcome.

For open queries, :class:`OpenAnswers` carries the *certain* answers
(tuples in the answer of every preferred repair) and the *possible*
answers (tuples in the answer of at least one).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.core.families import Family
from repro.relational.domain import Value
from repro.relational.rows import Row


class Verdict(enum.Enum):
    """Three-valued outcome of a closed query over preferred repairs."""

    TRUE = "true"
    FALSE = "false"
    UNDETERMINED = "undetermined"

    @property
    def as_bool(self) -> Optional[bool]:
        """The classical truth value, or ``None`` when undetermined."""
        if self is Verdict.TRUE:
            return True
        if self is Verdict.FALSE:
            return False
        return None


@dataclass(frozen=True)
class ClosedAnswer:
    """Result of closed-query CQA under one family."""

    family: Family
    verdict: Verdict
    repairs_considered: int
    satisfying: int
    #: A preferred repair falsifying the query, when one exists and the
    #: engine kept it (drives the "why not certain?" diagnostics).
    counterexample: Optional[FrozenSet[Row]] = None
    #: Which evaluation route produced the verdict: ``"indexed"`` /
    #: ``"naive"`` (per-repair evaluation), ``"witness-index"`` (the
    #: incremental engine's covering check), or ``"sqlite"`` (pushdown).
    #: Provenance only — excluded from equality so answers from
    #: different routes compare by content.
    route: Optional[str] = field(default=None, compare=False)

    @property
    def is_consistent_answer_true(self) -> bool:
        """Definition 3: true holds in *every* preferred repair."""
        return self.verdict is Verdict.TRUE


@dataclass(frozen=True)
class OpenAnswers:
    """Certain and possible answers of an open query under one family."""

    family: Family
    variables: Tuple[str, ...]
    certain: FrozenSet[Tuple[Value, ...]]
    possible: FrozenSet[Tuple[Value, ...]]
    repairs_considered: int
    #: Which evaluation route produced the answer sets (see
    #: :attr:`ClosedAnswer.route`); excluded from equality.
    route: Optional[str] = field(default=None, compare=False)

    @property
    def disputed(self) -> FrozenSet[Tuple[Value, ...]]:
        """Answers true in some but not all preferred repairs."""
        return self.possible - self.certain
