"""Unit tests for the preferred-CQA engine (Definition 3 semantics)."""

import pytest

from repro.core.families import Family
from repro.cqa.answers import Verdict
from repro.cqa.engine import CqaEngine
from repro.datagen.paper_instances import (
    Q1_TEXT,
    Q2_TEXT,
    example8_scenario,
    mgr_scenario,
)
from repro.exceptions import QueryError
from repro.query.parser import parse_query


def mgr_engine(family=Family.REP, with_priority=True):
    scenario = mgr_scenario(with_priority=with_priority)
    return scenario, CqaEngine(
        scenario.instance, scenario.dependencies, scenario.priority, family
    )


class TestClosedQueries:
    def test_q1_not_consistently_true_classically(self):
        """Example 2: true is not a consistent answer to Q1."""
        _, engine = mgr_engine(Family.REP)
        assert not engine.is_consistently_true(Q1_TEXT)
        assert engine.answer(Q1_TEXT).verdict is Verdict.UNDETERMINED

    def test_q2_undetermined_classically(self):
        """Example 3: neither true nor false is consistent for Q2 in r."""
        _, engine = mgr_engine(Family.REP, with_priority=False)
        assert engine.answer(Q2_TEXT).verdict is Verdict.UNDETERMINED

    @pytest.mark.parametrize(
        "family", [Family.LOCAL, Family.SEMI_GLOBAL, Family.GLOBAL, Family.COMMON]
    )
    def test_q2_preferred_consistent_answer_true(self, family):
        """Example 3: with the reliability priority, true is the
        preferred consistent answer to Q2 under every optimal family."""
        _, engine = mgr_engine(family)
        assert engine.is_consistently_true(Q2_TEXT)
        answer = engine.answer(Q2_TEXT)
        assert answer.verdict is Verdict.TRUE
        assert answer.repairs_considered == 2
        assert answer.counterexample is None

    def test_q1_false_under_preferences(self):
        """In both preferred repairs Mary out-earns John, so Q1 (John
        earns more) is consistently false."""
        _, engine = mgr_engine(Family.GLOBAL)
        answer = engine.answer(Q1_TEXT)
        assert answer.verdict is Verdict.FALSE

    def test_counterexample_reported(self):
        scenario, engine = mgr_engine(Family.REP)
        answer = engine.answer(Q2_TEXT)
        assert answer.verdict is Verdict.UNDETERMINED
        assert answer.counterexample == scenario.row_set("mary_it", "john_pr")

    def test_open_query_rejected_for_closed_api(self):
        _, engine = mgr_engine()
        with pytest.raises(QueryError):
            engine.is_consistently_true("Mgr(n, d, s, w)")

    def test_formula_objects_accepted(self):
        _, engine = mgr_engine(Family.GLOBAL)
        assert engine.is_consistently_true(parse_query(Q2_TEXT))


class TestOpenQueries:
    def test_certain_vs_possible(self):
        _, engine = mgr_engine(Family.REP, with_priority=False)
        result = engine.certain_answers(
            "EXISTS d, s, w . Mgr(n, d, s, w)", ("n",)
        )
        # Mary and John each appear in every repair (with some tuple).
        assert result.certain == {("Mary",), ("John",)}
        assert result.possible == {("Mary",), ("John",)}

    def test_disputed_answers(self):
        scenario, engine = mgr_engine(Family.REP, with_priority=False)
        result = engine.certain_answers("Mgr(n, d, s, w)", ("n", "d"))
        assert ("Mary", "R&D") in result.disputed
        assert result.certain == frozenset()

    def test_preferred_certain_answers_grow(self):
        """Narrowing to preferred repairs can only add certain answers."""
        _, classic = mgr_engine(Family.REP)
        _, preferred = mgr_engine(Family.GLOBAL)
        query = "EXISTS n, d, w . Mgr(n, d, s, w)"
        classic_result = classic.certain_answers(query, ("s",))
        preferred_result = preferred.certain_answers(query, ("s",))
        assert classic_result.certain <= preferred_result.certain

    def test_sql_certain_answers(self):
        # Mary earns 40 in one preferred repair and 20 in the other, so
        # she is a certain answer at the >= 20 threshold while John
        # (30 vs 10) is only possible.
        _, engine = mgr_engine(Family.GLOBAL)
        result = engine.sql_certain_answers(
            "SELECT m.Name FROM Mgr m WHERE m.Salary >= 20"
        )
        assert result.certain == {("Mary",)}
        assert result.possible == {("Mary",), ("John",)}


class TestEngineMechanics:
    def test_repairs_cached_and_shared(self):
        _, engine = mgr_engine(Family.GLOBAL)
        first = engine.repairs()
        assert engine.repairs() is first
        assert len(engine.repairs(Family.REP)) == 3

    def test_priority_graph_mismatch_rejected(self):
        scenario = mgr_scenario()
        other = example8_scenario()
        with pytest.raises(QueryError):
            CqaEngine(
                scenario.instance, scenario.dependencies, other.priority
            )

    def test_priority_from_edge_list(self):
        scenario = mgr_scenario()
        engine = CqaEngine(
            scenario.instance,
            scenario.dependencies,
            list(scenario.priority.edges),
            Family.GLOBAL,
        )
        assert engine.is_consistently_true(Q2_TEXT)

    def test_summary(self):
        _, engine = mgr_engine(Family.GLOBAL)
        summary = engine.summary()
        assert summary["tuples"] == 4
        assert summary["conflicts"] == 3
        assert summary["oriented"] == 2
        assert summary["family"] == "G-Rep"

    def test_consistent_database_single_repair(self):
        from repro.relational.instance import RelationInstance

        scenario = mgr_scenario()
        consistent = RelationInstance.from_values(
            scenario.instance.schema, [("Mary", "R&D", 40, 3)]
        )
        engine = CqaEngine(consistent, scenario.dependencies)
        assert engine.answer("Mgr(Mary, 'R&D', 40, 3)").verdict is Verdict.TRUE
        assert engine.repairs() == [consistent.rows]


class TestStreamCaching:
    """A fully-consumed repair stream must populate the repair cache."""

    @pytest.mark.parametrize(
        "family", [Family.REP, Family.LOCAL, Family.SEMI_GLOBAL]
    )
    def test_full_consumption_populates_cache(self, family, monkeypatch):
        scenario, engine = mgr_engine(family)
        assert family not in engine._repair_cache
        first = engine.answer(Q1_TEXT)  # consumes the whole stream
        assert family in engine._repair_cache
        assert engine._repair_cache[family] == engine.repairs(family)

        # Re-answering must not re-run Bron-Kerbosch.
        import repro.cqa.engine as engine_module

        def forbid(*args, **kwargs):  # pragma: no cover - assertion hook
            raise AssertionError("enumerate_repairs re-ran on a cached family")

        monkeypatch.setattr(engine_module, "enumerate_repairs", forbid)
        second = engine.answer(Q1_TEXT)
        # The counterexample may be a different (equally valid) falsifying
        # repair once the cached order is used; the semantics must agree.
        assert (second.verdict, second.repairs_considered, second.satisfying) == (
            first.verdict,
            first.repairs_considered,
            first.satisfying,
        )
        assert engine.is_consistently_true(Q1_TEXT) == (
            first.verdict is Verdict.TRUE
        )

    def test_cached_order_matches_repairs_contract(self):
        _, engine = mgr_engine(Family.REP)
        engine.answer(Q1_TEXT)
        cached = engine._repair_cache[Family.REP]
        from repro.core.families import preferred_repairs

        assert cached == preferred_repairs(Family.REP, engine.priority)

    def test_early_exit_leaves_cache_empty(self):
        """is_consistently_true stops at the first counterexample; a
        partial stream must not be mistaken for the full family."""
        _, engine = mgr_engine(Family.REP)
        assert not engine.is_consistently_true(Q1_TEXT)  # falsified early
        assert Family.REP not in engine._repair_cache
