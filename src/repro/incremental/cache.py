"""Component-scoped repair caches with content fingerprints.

Repairs are maximal independent sets of the conflict graph, and maximal
independent sets of a disconnected graph factor through its connected
components — so all repair-level work can be cached *per component*.

The cache key is the component's **fingerprint**: its vertex frozenset
(conflict edges are a function of the vertices and the fixed dependency
set, so the vertex set determines the subgraph), extended with the
active priority edges for family-filtered entries.  Fingerprinting by
content makes invalidation implicit: when an update merges or splits
components, the new components have new vertex sets and simply miss the
cache, while every untouched component keeps hitting its old entry.

Entries are evicted FIFO past ``max_entries`` so a long-running engine
that churns through many instance versions stays bounded.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.constraints.conflict_graph import ConflictGraph
from repro.core.cleaning import all_cleaning_results
from repro.core.families import Family
from repro.core.optimality import (
    globally_optimal_repairs,
    is_locally_optimal,
    is_semi_globally_optimal,
)
from repro.obs import observe_cache
from repro.priorities.priority import Priority, PriorityEdge
from repro.relational.rows import Row
from repro.repairs.enumerate import enumerate_repairs, repair_sort_key

from repro.incremental.dynamic_graph import DynamicConflictGraph

Repair = FrozenSet[Row]

#: Fingerprint of a component for family-filtered entries: the vertex
#: set plus the priority edges active inside the component.
FamilyKey = Tuple[Family, FrozenSet[Row], FrozenSet[PriorityEdge]]


def _deterministic(repairs: List[Repair]) -> List[Repair]:
    """The listing order used by :func:`repro.core.families.preferred_repairs`."""
    return sorted(repairs, key=repair_sort_key)


class ComponentRepairCache:
    """Per-component repair sets, preferred fragments and subgraphs."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._graphs: Dict[FrozenSet[Row], ConflictGraph] = {}
        self._fragments: Dict[FrozenSet[Row], List[Repair]] = {}
        self._preferred: Dict[FamilyKey, List[Repair]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _hit(self) -> None:
        self.hits += 1
        observe_cache("component_repair", "hit")

    def _miss(self) -> None:
        self.misses += 1
        observe_cache("component_repair", "miss")

    # Entry points -------------------------------------------------------------

    def component_graph(
        self, graph: DynamicConflictGraph, component: FrozenSet[Row]
    ) -> ConflictGraph:
        """The immutable induced subgraph of one component (cached)."""
        cached = self._graphs.get(component)
        if cached is None:
            cached = graph.induced_component(component)
            self._remember(self._graphs, component, cached)
        return cached

    def repair_fragments(
        self, graph: DynamicConflictGraph, component: FrozenSet[Row]
    ) -> List[Repair]:
        """All maximal independent sets of the component."""
        cached = self._fragments.get(component)
        if cached is not None:
            self._hit()
            return cached
        self._miss()
        subgraph = self.component_graph(graph, component)
        # The component is connected by construction; skip re-factoring.
        fragments = _deterministic(
            list(enumerate_repairs(subgraph, factor_components=False))
        )
        self._remember(self._fragments, component, fragments)
        return fragments

    def preferred_fragments(
        self,
        graph: DynamicConflictGraph,
        component: FrozenSet[Row],
        family: Family,
        active_edges: FrozenSet[PriorityEdge],
    ) -> List[Repair]:
        """The family's preferred repairs *of the component* alone.

        Every preferred-repair family of the paper decomposes across
        connected components: local/semi-global failure witnesses are
        confined to one component, the ≪-lifting compares repairs
        difference-by-difference inside components (priority edges only
        relate conflicting, hence co-component, tuples), and Algorithm 1
        steps in distinct components commute.  Full preferred repairs
        are therefore exactly the unions of one preferred fragment per
        component, which is what the incremental engine assembles.
        """
        key: FamilyKey = (family, component, active_edges)
        cached = self._preferred.get(key)
        if cached is not None:
            self._hit()
            return cached
        self._miss()
        fragments = self.repair_fragments(graph, component)
        if family is Family.REP and not active_edges:
            selected = fragments
        else:
            priority = Priority(
                self.component_graph(graph, component), active_edges
            )
            if family is Family.REP:
                selected = fragments
            elif family is Family.LOCAL:
                selected = [
                    f for f in fragments if is_locally_optimal(f, priority)
                ]
            elif family is Family.SEMI_GLOBAL:
                selected = [
                    f for f in fragments if is_semi_globally_optimal(f, priority)
                ]
            elif family is Family.GLOBAL:
                selected = globally_optimal_repairs(priority, fragments)
            elif family is Family.COMMON:
                selected = all_cleaning_results(priority)
            else:  # pragma: no cover - exhaustive enum
                raise ValueError(f"unknown family {family!r}")
        selected = _deterministic(list(selected))
        self._remember(self._preferred, key, selected)
        return selected

    # Bookkeeping --------------------------------------------------------------

    def _remember(self, store: Dict, key, value) -> None:
        if len(store) >= self.max_entries:
            store.pop(next(iter(store)))
            self.evictions += 1
            observe_cache("component_repair", "eviction")
        store[key] = value

    def clear(self) -> None:
        self._graphs.clear()
        self._fragments.clear()
        self._preferred.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "graphs": len(self._graphs),
            "fragment_sets": len(self._fragments),
            "preferred_sets": len(self._preferred),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComponentRepairCache({len(self._fragments)} fragment sets, "
            f"{self.hits} hits / {self.misses} misses)"
        )
