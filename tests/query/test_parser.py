"""Unit tests for the first-order query parser."""

import pytest

from repro.exceptions import QuerySyntaxError
from repro.query.ast import (
    And,
    Atom,
    Comparison,
    Const,
    Exists,
    FalseFormula,
    Forall,
    Implies,
    Not,
    Or,
    TrueFormula,
    Var,
)
from repro.query.parser import parse_query


class TestTerms:
    def test_lowercase_identifier_is_variable(self):
        assert parse_query("R(x)") == Atom("R", [Var("x")])

    def test_uppercase_identifier_is_constant(self):
        assert parse_query("R(Mary)") == Atom("R", [Const("Mary")])

    def test_quoted_string_is_constant(self):
        assert parse_query("R('r&d dept')") == Atom("R", [Const("r&d dept")])

    def test_number_is_constant(self):
        assert parse_query("R(42)") == Atom("R", [Const(42)])

    def test_escaped_quote(self):
        assert parse_query(r"R('it\'s')") == Atom("R", [Const("it's")])


class TestConnectives:
    def test_and_binds_tighter_than_or(self):
        formula = parse_query("R(1) OR R(2) AND R(3)")
        assert isinstance(formula, Or)
        assert isinstance(formula.parts[1], And)

    def test_not(self):
        assert parse_query("NOT R(1)") == Not(Atom("R", [Const(1)]))

    def test_double_negation(self):
        assert parse_query("NOT NOT R(1)") == Not(Not(Atom("R", [Const(1)])))

    def test_implies(self):
        formula = parse_query("R(1) IMPLIES R(2)")
        assert isinstance(formula, Implies)

    def test_parentheses_override(self):
        formula = parse_query("(R(1) OR R(2)) AND R(3)")
        assert isinstance(formula, And)

    def test_true_false_literals(self):
        assert parse_query("TRUE") == TrueFormula()
        assert parse_query("false") == FalseFormula()

    def test_keywords_case_insensitive(self):
        assert parse_query("r(1) and r(2)") == And(
            [Atom("r", [Const(1)]), Atom("r", [Const(2)])]
        )


class TestQuantifiers:
    def test_exists_block(self):
        formula = parse_query("EXISTS x, y . R(x, y)")
        assert formula == Exists(["x", "y"], Atom("R", [Var("x"), Var("y")]))

    def test_forall(self):
        formula = parse_query("FORALL x . R(x) IMPLIES R(x)")
        assert isinstance(formula, Forall)

    def test_nested_quantifiers(self):
        formula = parse_query("EXISTS x . FORALL y . R(x, y)")
        assert isinstance(formula, Exists)
        assert isinstance(formula.body, Forall)

    def test_quantifier_scopes_over_implication(self):
        formula = parse_query("FORALL x . R(x) IMPLIES S(x)")
        assert formula.free_variables() == frozenset()

    def test_uppercase_variable_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("EXISTS X . R(X)")


class TestComparisons:
    @pytest.mark.parametrize(
        "text,op",
        [("x = 1", "="), ("x != 1", "!="), ("x <> 1", "!="), ("x < 1", "<"),
         ("x > 1", ">"), ("x <= 1", "<="), ("x >= 1", ">=")],
    )
    def test_operators(self, text, op):
        formula = parse_query(text)
        assert isinstance(formula, Comparison)
        assert formula.op == op

    def test_comparison_of_constants(self):
        assert parse_query("Mary = Mary") == Comparison(
            "=", Const("Mary"), Const("Mary")
        )


class TestUnicodeAliases:
    def test_unicode_query(self):
        formula = parse_query("∃ x . R(x) ∧ ¬ S(x) ∨ x ≠ 3")
        assert isinstance(formula, Exists)

    def test_unicode_forall(self):
        assert isinstance(parse_query("∀ x . x ≥ 0"), Forall)


class TestPaperQueries:
    def test_q1_parses(self):
        from repro.datagen.paper_instances import Q1_TEXT

        formula = parse_query(Q1_TEXT)
        assert formula.is_closed
        assert isinstance(formula, Exists)
        assert len(formula.variables) == 6

    def test_q2_parses(self):
        from repro.datagen.paper_instances import Q2_TEXT

        assert parse_query(Q2_TEXT).is_closed


class TestErrors:
    def test_trailing_input(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("R(1) R(2)")

    def test_unbalanced_parens(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("(R(1)")

    def test_missing_dot_after_quantifier(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("EXISTS x R(x)")

    def test_garbage_character(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("R(1) @ R(2)")

    def test_empty_input(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("")

    def test_comments_are_skipped(self):
        formula = parse_query("R(1) # the fact\n AND R(2)")
        assert isinstance(formula, And)
