"""Unit and property tests for the dynamic conflict graph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.conflict_graph import build_conflict_graph
from repro.datagen.generators import GRID_FDS, GRID_SCHEMA
from repro.exceptions import UpdateError
from repro.incremental import DynamicConflictGraph
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema
from repro.constraints.fd import FunctionalDependency

from tests.conftest import TWO_FDS, TWO_FD_SCHEMA


def kv(a, b):
    return Row(GRID_SCHEMA, (a, b))


def quad(a, b, c, d):
    return Row(TWO_FD_SCHEMA, (a, b, c, d))


class TestSingleOperations:
    def test_insert_builds_conflicts_from_buckets(self):
        graph = DynamicConflictGraph(dependencies=GRID_FDS)
        graph.insert(kv(0, 0))
        delta = graph.insert(kv(0, 1))
        assert delta.added_edges == {frozenset({kv(0, 0), kv(0, 1)})}
        assert graph.are_conflicting(kv(0, 0), kv(0, 1))
        assert graph.edge_labels(frozenset({kv(0, 0), kv(0, 1)})) == {GRID_FDS[0]}

    def test_same_rhs_rows_do_not_conflict(self):
        graph = DynamicConflictGraph(dependencies=GRID_FDS)
        graph.insert(kv(0, 0))
        delta = graph.insert(kv(1, 0))
        assert not delta.added_edges
        assert graph.edge_count == 0

    def test_duplicate_insert_is_noop(self):
        graph = DynamicConflictGraph([kv(0, 0)], GRID_FDS)
        delta = graph.insert(kv(0, 0))
        assert delta.is_noop
        assert graph.vertex_count == 1

    def test_delete_unknown_row_raises(self):
        graph = DynamicConflictGraph(dependencies=GRID_FDS)
        with pytest.raises(UpdateError):
            graph.delete(kv(9, 9))

    def test_delete_removes_edges_and_buckets(self):
        graph = DynamicConflictGraph([kv(0, 0), kv(0, 1)], GRID_FDS)
        delta = graph.delete(kv(0, 1))
        assert delta.removed_edges == {frozenset({kv(0, 0), kv(0, 1)})}
        assert graph.edge_count == 0
        # The bucket no longer knows the deleted row: a later insert
        # conflicts with the surviving tuple only.
        delta = graph.insert(kv(0, 2))
        assert delta.added_edges == {frozenset({kv(0, 0), kv(0, 2)})}
        assert not any(kv(0, 1) in pair for pair in graph.edges())

    def test_multi_fd_labels(self):
        graph = DynamicConflictGraph(dependencies=TWO_FDS)
        graph.insert(quad(0, 0, 0, 0))
        delta = graph.insert(quad(0, 1, 0, 1))
        (pair,) = delta.added_edges
        assert graph.edge_labels(pair) == frozenset(TWO_FDS)


class TestComponentTracking:
    def test_insert_merges_components(self):
        # (0,0,0,0) and (1,1,1,1) are unrelated; the bridge agrees with
        # the first on A (differing B) and with the second on C
        # (differing D), merging both components.
        left, right = quad(0, 0, 0, 0), quad(1, 1, 1, 1)
        bridge = quad(0, 1, 1, 0)
        graph = DynamicConflictGraph([left, right], TWO_FDS)
        assert graph.component_count == 2
        delta = graph.insert(bridge)
        assert graph.component_count == 1
        assert delta.touched_components == (frozenset({left, right, bridge}),)
        assert graph.component_of(left) == {left, right, bridge}

    def test_delete_splits_component(self):
        left, right = quad(0, 0, 0, 0), quad(1, 1, 1, 1)
        bridge = quad(0, 1, 1, 0)
        graph = DynamicConflictGraph([left, right, bridge], TWO_FDS)
        assert graph.component_count == 1
        delta = graph.delete(bridge)
        assert graph.component_count == 2
        assert set(delta.touched_components) == {
            frozenset({left}),
            frozenset({right}),
        }
        assert graph.component_of(left) == {left}

    def test_components_deterministic_order(self):
        rows = [kv(2, 0), kv(0, 0), kv(1, 0)]
        graph = DynamicConflictGraph(rows, GRID_FDS)
        components = graph.connected_components()
        assert components == sorted(components, key=min)

    def test_conflict_component_count(self):
        graph = DynamicConflictGraph(
            [kv(0, 0), kv(0, 1), kv(1, 0)], GRID_FDS
        )
        assert graph.component_count == 2
        assert graph.conflict_component_count == 1


class TestInterop:
    def test_snapshot_matches_batch_construction(self):
        rows = [kv(0, 0), kv(0, 1), kv(1, 0), kv(1, 1), kv(2, 0)]
        dynamic = DynamicConflictGraph(rows, GRID_FDS)
        assert dynamic.snapshot() == build_conflict_graph(rows, GRID_FDS)

    def test_induced_component_equals_batch_induced(self):
        rows = [kv(0, 0), kv(0, 1), kv(1, 0)]
        dynamic = DynamicConflictGraph(rows, GRID_FDS)
        batch = build_conflict_graph(rows, GRID_FDS)
        for component in dynamic.connected_components():
            assert dynamic.induced_component(component) == batch.induced(component)

    def test_container_protocol(self):
        graph = DynamicConflictGraph([kv(0, 0)], GRID_FDS)
        assert len(graph) == 1
        assert kv(0, 0) in graph
        assert kv(1, 1) not in graph


@st.composite
def operation_sequences(draw):
    """A random interleaving of inserts and deletes over a small universe."""
    universe = [
        quad(a, b, c, d)
        for a in range(2)
        for b in range(2)
        for c in range(2)
        for d in range(2)
    ]
    steps = draw(
        st.lists(
            st.tuples(st.integers(0, len(universe) - 1), st.booleans()),
            min_size=0,
            max_size=40,
        )
    )
    return universe, steps


class TestEquivalenceProperty:
    @given(operation_sequences())
    @settings(max_examples=80, deadline=None)
    def test_any_update_sequence_matches_from_scratch(self, case):
        """After arbitrary inserts/deletes the dynamic graph equals
        ``build_conflict_graph`` run from scratch on the final rows —
        vertices, edges, per-edge labels and components alike."""
        universe, steps = case
        dynamic = DynamicConflictGraph(dependencies=TWO_FDS)
        present = set()
        for index, is_delete in steps:
            row = universe[index]
            if is_delete and row in present:
                dynamic.delete(row)
                present.discard(row)
            elif not is_delete and row not in present:
                dynamic.insert(row)
                present.add(row)
        reference = build_conflict_graph(present, TWO_FDS)
        assert dynamic.snapshot() == reference
        for pair in reference.edges():
            assert dynamic.edge_labels(pair) == reference.edge_labels(pair)
        assert sorted(dynamic.connected_components(), key=sorted) == sorted(
            reference.connected_components(), key=sorted
        )

    @given(operation_sequences())
    @settings(max_examples=40, deadline=None)
    def test_component_ids_partition_vertices(self, case):
        universe, steps = case
        dynamic = DynamicConflictGraph(dependencies=TWO_FDS)
        present = set()
        for index, is_delete in steps:
            row = universe[index]
            if is_delete and row in present:
                dynamic.delete(row)
                present.discard(row)
            elif not is_delete and row not in present:
                dynamic.insert(row)
                present.add(row)
        seen = set()
        for component in dynamic.connected_components():
            assert not component & seen
            seen |= component
            ids = {dynamic.component_id_of(row) for row in component}
            assert len(ids) == 1
        assert seen == present
