"""Multi-relation databases.

The paper restricts itself to a single relation for clarity; the library
supports full databases.  A :class:`Database` is an immutable mapping
from relation names to :class:`RelationInstance` objects.  All
repair-related machinery operates on the set of *all* rows of the
database (conflicts are intra-relation because functional dependencies
are), so a repair of a database is again represented as a frozenset of
rows drawn from possibly many relations.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Sequence,
    Set,
)

from repro.exceptions import SchemaError, UnknownRelationError
from repro.relational.domain import Value
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import DatabaseSchema, RelationSchema


class Database:
    """An immutable collection of relation instances."""

    __slots__ = ("schema", "_instances")

    def __init__(self, instances: Iterable[RelationInstance]) -> None:
        by_name: Dict[str, RelationInstance] = {}
        for instance in instances:
            if instance.schema.name in by_name:
                raise SchemaError(
                    f"duplicate relation instance {instance.schema.name!r}"
                )
            by_name[instance.schema.name] = instance
        self._instances = by_name
        self.schema = DatabaseSchema(inst.schema for inst in by_name.values())

    @classmethod
    def single(cls, instance: RelationInstance) -> "Database":
        """A database holding exactly one relation (the paper's setting)."""
        return cls([instance])

    @classmethod
    def from_rows(cls, schema: DatabaseSchema, rows: Iterable[Row]) -> "Database":
        """Reassemble a database from a flat set of rows over ``schema``."""
        buckets: Dict[str, Set[Row]] = {name: set() for name in schema.relation_names}
        for row in rows:
            if not schema.has_relation(row.relation):
                raise UnknownRelationError(
                    f"row {row!r} is not over schema {schema!r}"
                )
            buckets[row.relation].add(row)
        return cls(
            RelationInstance(schema.relation(name), bucket)
            for name, bucket in buckets.items()
        )

    def relation(self, name: str) -> RelationInstance:
        """Instance of relation ``name``."""
        try:
            return self._instances[name]
        except KeyError as exc:
            raise UnknownRelationError(f"unknown relation {name!r}") from exc

    def all_rows(self) -> FrozenSet[Row]:
        """Every row of every relation (vertices of the conflict graph)."""
        rows: Set[Row] = set()
        for instance in self._instances.values():
            rows.update(instance.rows)
        return frozenset(rows)

    def restrict(self, rows: AbstractSet[Row]) -> "Database":
        """The sub-database containing only the given rows."""
        return Database(
            instance.restrict(rows) for instance in self._instances.values()
        )

    def active_domain(self) -> Set[Value]:
        """All values appearing anywhere in the database."""
        domain: Set[Value] = set()
        for instance in self._instances.values():
            domain.update(instance.active_domain())
        return domain

    def union(self, other: "Database") -> "Database":
        """Relation-wise union (used to integrate data sources)."""
        if set(self._instances) != set(other._instances):
            raise SchemaError("cannot union databases over different schemas")
        return Database(
            self._instances[name].union(other._instances[name])
            for name in self._instances
        )

    def __iter__(self) -> Iterator[RelationInstance]:
        return iter(self._instances.values())

    def __len__(self) -> int:
        return sum(len(instance) for instance in self._instances.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._instances == other._instances

    def __hash__(self) -> int:
        return hash(frozenset(self._instances.items()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{name}: {len(inst)} rows" for name, inst in sorted(self._instances.items())
        )
        return f"Database({parts})"


def integrate_sources(sources: Sequence[RelationInstance]) -> RelationInstance:
    """Union a list of (individually consistent) sources into one instance.

    This is the data-integration scenario of Example 1: autonomous sources
    contribute conflicting tuples and the integrated instance
    ``r = s1 ∪ s2 ∪ ... ∪ sk`` may violate the integrity constraints.
    """
    if not sources:
        raise SchemaError("need at least one source to integrate")
    merged = sources[0]
    for source in sources[1:]:
        merged = merged.union(source)
    return merged
