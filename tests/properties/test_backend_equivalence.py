"""Equivalence of the SQLite-pushed backend and the in-memory engine.

For every *rewritable* query shape the ConQuer-style rewriting must
produce exactly the certain (and possible) answers the repair-streaming
:class:`CqaEngine` computes — on arbitrary instances.  The strategies
below draw small random databases over a mixed-type dirty relation
``R(K, A:number, B)`` (plus a clean companion ``S(A:number, C)``) whose
tiny domains force plenty of FD violations, and compare both engines on
each shape of the rewritable fragment:

* single atom, full answer tuple;
* existential projection (and explicit answer-variable subsets);
* constant selections on group/class columns (both domains);
* order and (in)equality comparisons, including the statically
  decidable cross-domain cases;
* joins with a consistent relation;
* closed (boolean) queries, via ``answer()`` verdicts;
* everything above for each FD variant that keeps one left-hand side
  (single FD, merged same-LHS FDs) and for every repair family (with no
  priority all families coincide with Rep — the property the pushdown
  relies on);
* C_forest shapes — *both* relations dirty, joined through ``S``'s full
  key (or not joined at all): the multi-dirty recursive certification
  must agree with repair streaming on every drawn instance.
"""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze
from repro.backend import SqlCqaEngine
from repro.backend.rewrite import analyze_query
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.query.ast import And, Atom, Comparison, Exists, Var
from repro.query.validate import check_against_schema
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.sqlite_io import save_database

R_SCHEMA = RelationSchema("R", ["K", "A:number", "B"])
S_SCHEMA = RelationSchema("S", ["A:number", "C"])
SCHEMA = DatabaseSchema([R_SCHEMA, S_SCHEMA])

FD_VARIANTS = {
    "key-like": [FunctionalDependency.parse("K -> A", "R")],
    "merged-rhs": [FunctionalDependency.parse("K -> A, B", "R")],
    "same-lhs-pair": [
        FunctionalDependency.parse("K -> A", "R"),
        FunctionalDependency.parse("K -> B", "R"),
    ],
}


def _r(*terms):
    return Atom("R", list(terms))


def _s(*terms):
    return Atom("S", list(terms))


x, y, z, c = Var("x"), Var("y"), Var("z"), Var("c")

#: (label, formula, explicit answer variables or None) — every entry
#: must be pushed down (analyze_query returns a plan, never a fallback).
REWRITABLE_SHAPES = [
    ("atom", _r(x, y, z), None),
    ("projection", Exists(["z"], _r(x, y, z)), None),
    ("variable-subset", _r(x, y, z), ("y",)),
    ("group-constant", Exists(["z"], _r("k0", y, z)), None),
    ("class-constant", Exists(["z"], _r(x, 1, z)), None),
    ("order-comparison", Exists(["z"], And([_r(x, y, z), Comparison(">=", y, 1)])), None),
    ("name-inequality", Exists(["z"], And([_r(x, y, z), Comparison("!=", x, "k0")])), None),
    ("variable-equality", Exists(["z"], And([_r(x, y, z), Comparison("=", x, z)])), None),
    ("clean-join", Exists(["z"], And([_r(x, y, z), _s(y, c)])), None),
    ("clean-join-projected", Exists(["z", "c"], And([_r(x, y, z), _s(y, c)])), None),
    ("clean-only", _s(y, c), None),
    ("cross-domain-equality", Exists(["z"], And([_r(x, y, z), Comparison("=", x, 1)])), None),
    ("cross-domain-inequality", Exists(["z"], And([_r(x, y, z), Comparison("!=", y, "k0")])), None),
    ("order-on-names", Exists(["z"], And([_r(x, y, z), Comparison("<", x, z)])), None),
    ("repeated-variable", Exists(["y"], _r(x, y, x)), None),
]

#: Both relations dirty: R(K -> A) joins S(A -> C) through S's full key.
BOTH_DIRTY_FDS = [
    FunctionalDependency.parse("K -> A", "R"),
    FunctionalDependency.parse("A -> C", "S"),
]

#: (label, formula, explicit answer variables or None) — every entry is
#: a C_forest under BOTH_DIRTY_FDS and must compile (kind "forest").
C_FOREST_SHAPES = [
    ("key-join", Exists(["z"], And([_r(x, y, z), _s(y, c)])), None),
    (
        "key-join-projected",
        Exists(["z", "c"], And([_r(x, y, z), _s(y, c)])),
        None,
    ),
    (
        "key-join-variable-subset",
        Exists(["z"], And([_r(x, y, z), _s(y, c)])),
        ("x", "c"),
    ),
    (
        "independent-trees",
        Exists(["z"], And([_r(x, y, z), _s(1, c)])),
        None,
    ),
    (
        "key-join-child-comparison",
        Exists(
            ["z", "c"],
            And([_r(x, y, z), _s(y, c), Comparison("!=", c, "c0")]),
        ),
        None,
    ),
    (
        "key-join-root-comparison",
        Exists(["z"], And([_r(x, y, z), _s(y, c), Comparison(">=", y, 1)])),
        None,
    ),
]

C_FOREST_CLOSED_SHAPES = [
    (
        "closed-key-join",
        Exists(
            ["k", "a", "b", "cc"],
            And([_r(Var("k"), Var("a"), Var("b")), _s(Var("a"), Var("cc"))]),
        ),
    ),
    (
        "closed-independent-trees",
        Exists(
            ["k", "a", "b", "cc"],
            And([_r(Var("k"), Var("a"), Var("b")), _s(0, Var("cc"))]),
        ),
    ),
]

CLOSED_SHAPES = [
    ("exists", Exists(["k", "a", "b"], _r(Var("k"), Var("a"), Var("b")))),
    (
        "exists-selected",
        Exists(
            ["k", "a", "b"],
            And([_r(Var("k"), Var("a"), Var("b")), Comparison(">", Var("a"), 0)]),
        ),
    ),
    ("exists-ground-atom", Exists(["b"], _r("k0", 1, Var("b")))),
    (
        "exists-join",
        Exists(
            ["k", "a", "b", "cc"],
            And([_r(Var("k"), Var("a"), Var("b")), _s(Var("a"), Var("cc"))]),
        ),
    ),
]


@st.composite
def databases(draw):
    r_rows = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["k0", "k1", "k2"]),
                st.integers(min_value=0, max_value=2),
                st.sampled_from(["k0", "u", "v"]),
            ),
            max_size=8,
            unique=True,
        )
    )
    s_rows = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.sampled_from(["c0", "c1"]),
            ),
            max_size=4,
            unique=True,
        )
    )
    return Database(
        [
            RelationInstance.from_values(R_SCHEMA, r_rows),
            RelationInstance.from_values(S_SCHEMA, s_rows),
        ]
    )


def _engines(database, dependencies, family=Family.REP):
    connection = sqlite3.connect(":memory:")
    save_database(database, connection, dependencies)
    sql_engine = SqlCqaEngine(connection, dependencies, family=family)
    memory_engine = CqaEngine(database, dependencies, family=family)
    return sql_engine, memory_engine


def _predicted_route(formula, dependencies, variables=None):
    """The static analyzer's prediction of ``last_route`` (differential
    oracle: the analyzer must BE the routing logic, so its prediction is
    compared against the engine on every example)."""
    checked = check_against_schema(formula, SCHEMA)
    report = analyze(SCHEMA, dependencies, checked, variables)
    return report.expected_last_route("sqlite")


class TestShapesArePushed:
    @pytest.mark.parametrize(
        "label,formula,variables",
        REWRITABLE_SHAPES,
        ids=[shape[0] for shape in REWRITABLE_SHAPES],
    )
    def test_open_shape_compiles(self, label, formula, variables):
        for dependencies in FD_VARIANTS.values():
            checked = check_against_schema(formula, SCHEMA)
            decision = analyze_query(checked, SCHEMA, dependencies, variables)
            assert decision.pushed, decision.reason

    @pytest.mark.parametrize(
        "label,formula", CLOSED_SHAPES, ids=[shape[0] for shape in CLOSED_SHAPES]
    )
    def test_closed_shape_compiles(self, label, formula):
        for dependencies in FD_VARIANTS.values():
            decision = analyze_query(formula, SCHEMA, dependencies, ())
            assert decision.pushed, decision.reason


class TestOpenQueryEquivalence:
    @given(databases())
    @settings(max_examples=30, deadline=None)
    def test_certain_and_possible_answers_agree(self, database):
        for dependencies in FD_VARIANTS.values():
            sql_engine, memory_engine = _engines(database, dependencies)
            with sql_engine:
                for label, formula, variables in REWRITABLE_SHAPES:
                    pushed = sql_engine.certain_answers(formula, variables)
                    assert sql_engine.last_route == "sqlite", label
                    assert (
                        _predicted_route(formula, dependencies, variables)
                        == sql_engine.last_route
                    ), label
                    reference = memory_engine.certain_answers(formula, variables)
                    assert pushed.certain == reference.certain, label
                    assert pushed.possible == reference.possible, label
                    assert pushed.variables == reference.variables, label


class TestClosedQueryEquivalence:
    @given(databases())
    @settings(max_examples=30, deadline=None)
    def test_verdicts_agree(self, database):
        for dependencies in FD_VARIANTS.values():
            sql_engine, memory_engine = _engines(database, dependencies)
            with sql_engine:
                for label, formula in CLOSED_SHAPES:
                    pushed = sql_engine.answer(formula)
                    assert sql_engine.last_route == "sqlite", label
                    assert (
                        _predicted_route(formula, dependencies)
                        == sql_engine.last_route
                    ), label
                    reference = memory_engine.answer(formula)
                    assert pushed.verdict is reference.verdict, label


class TestCForestEquivalence:
    """Multi-dirty key-join forests: the recursive NOT EXISTS
    certification must be bit-identical to repair streaming."""

    @pytest.mark.parametrize(
        "label,formula,variables",
        C_FOREST_SHAPES,
        ids=[shape[0] for shape in C_FOREST_SHAPES],
    )
    def test_forest_shape_compiles(self, label, formula, variables):
        checked = check_against_schema(formula, SCHEMA)
        decision = analyze_query(checked, SCHEMA, BOTH_DIRTY_FDS, variables)
        assert decision.pushed, decision.reason
        assert decision.plan.kind == "forest", label

    @given(databases())
    @settings(max_examples=30, deadline=None)
    def test_certain_and_possible_answers_agree(self, database):
        sql_engine, memory_engine = _engines(database, BOTH_DIRTY_FDS)
        with sql_engine:
            for label, formula, variables in C_FOREST_SHAPES:
                pushed = sql_engine.certain_answers(formula, variables)
                assert sql_engine.last_route == "sqlite", label
                assert (
                    _predicted_route(formula, BOTH_DIRTY_FDS, variables)
                    == sql_engine.last_route
                ), label
                reference = memory_engine.certain_answers(formula, variables)
                assert pushed.certain == reference.certain, label
                assert pushed.possible == reference.possible, label
                assert pushed.variables == reference.variables, label

    @given(databases())
    @settings(max_examples=30, deadline=None)
    def test_closed_verdicts_agree(self, database):
        sql_engine, memory_engine = _engines(database, BOTH_DIRTY_FDS)
        with sql_engine:
            for label, formula in C_FOREST_CLOSED_SHAPES:
                pushed = sql_engine.answer(formula)
                assert sql_engine.last_route == "sqlite", label
                assert (
                    _predicted_route(formula, BOTH_DIRTY_FDS)
                    == sql_engine.last_route
                ), label
                reference = memory_engine.answer(formula)
                assert pushed.verdict is reference.verdict, label


class TestFamilyInvariance:
    """With no priority, every preferred family equals Rep — the pushed
    answers must match each family's in-memory answers."""

    @given(databases())
    @settings(max_examples=10, deadline=None)
    def test_all_families_agree_with_pushdown(self, database):
        dependencies = FD_VARIANTS["key-like"]
        formula = Exists(["z"], _r(x, y, z))
        for family in Family:
            sql_engine, memory_engine = _engines(database, dependencies, family)
            with sql_engine:
                pushed = sql_engine.certain_answers(formula)
                assert sql_engine.last_route == "sqlite"
            reference = memory_engine.certain_answers(formula)
            assert pushed.certain == reference.certain
            assert pushed.possible == reference.possible
