"""Shape classification of queries against an FD theory.

:func:`classify` is the collect-all counterpart of the rewriting
compiler's historical fail-fast analysis: it walks the same checks in
the same precedence order but records *every* finding as a
:class:`~repro.analysis.model.Diagnostic` instead of raising at the
first.  The first blocking diagnostic is therefore always the exact
reason the legacy code would have raised — ``RewriteDecision.reason``,
``last_route`` strings and metric labels are preserved bit-for-bit —
while later entries enrich explanations (``repro analyze``,
``--explain``).

The precedence, inherited from ``_extract_conjunctive`` +
``compile_plan``:

1. ``RA104`` shadowed quantifier (analysis stops: the prefix is
   ill-formed, nothing below it is meaningful);
2. ``RA102`` non-conjunctive construct, one per offending part in body
   order;
3. ``RA103`` no relational atom (only when every part parsed);
4. ``RA101`` unsafe variables;
5. ``RA301`` mixed-LHS dependencies, per mentioned relation in sorted
   order;
6. static two-domain typing — a statically unsatisfiable conjunct makes
   the plan *empty* (``RA002``, info) and, crucially, pre-empts the
   multi-dirty check exactly like the legacy compiler did: a statically
   empty multi-dirty query still pushes;
7. multiple atoms over inconsistent relations: the C_forest analysis
   (:func:`repro.analysis.cforest.plan_forest`) runs over the full join
   graph; when the dirty atoms form a key-join forest the oriented
   structure is stored on the classification (``RA011``, info — the
   compiler emits recursive ``NOT EXISTS`` certifications for it),
   otherwise ``RA201`` blocks both pushed engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.constraints.fd import FunctionalDependency
from repro.exceptions import QueryBindingError
from repro.query.ast import (
    And,
    Atom,
    Comparison,
    Const,
    Exists,
    Formula,
    Var,
)
from repro.relational.domain import AttributeType
from repro.relational.schema import DatabaseSchema

from .cforest import CForest, plan_forest
from .model import Diagnostic, Severity, make_diagnostic
from .profiles import DirtyProfile, NotRewritable, dirty_profile


@dataclass(frozen=True)
class ConjunctiveShape:
    """The conjunctive skeleton of a query: atoms, comparisons, answers.

    Attribute-compatible with the compiler's former private
    ``_Conjunctive`` record so SQL emission consumes it unchanged.
    """

    atoms: Tuple[Atom, ...]
    comparisons: Tuple[Comparison, ...]
    answer_variables: Tuple[str, ...]


@dataclass
class Classification:
    """Everything :func:`classify` learned about one query."""

    #: The conjunctive skeleton; ``None`` when the quantifier prefix was
    #: ill-formed (shadowing) and nothing below it could be read.
    shape: Optional[ConjunctiveShape]
    diagnostics: Tuple[Diagnostic, ...]
    #: Mentioned relations, sorted.
    mentioned: Tuple[str, ...]
    #: Conflict profiles of the mentioned dirty relations.
    profiles: Dict[str, DirtyProfile] = field(default_factory=dict)
    #: Static two-domain types of the query's variables.
    variable_types: Dict[str, AttributeType] = field(default_factory=dict)
    #: Comparisons surviving the typing pass (vacuous ones dropped).
    kept_comparisons: Tuple[Comparison, ...] = ()
    #: Why the conjunction is statically unsatisfiable, when it is.
    empty_reason: Optional[str] = None
    #: Positions of atoms over dirty relations, in body order.
    dirty_indexes: Tuple[int, ...] = ()
    #: The oriented C_forest structure when several dirty atoms form a
    #: key-join forest (the compiler's input for the multi-dirty path).
    forest: Optional[CForest] = None

    @property
    def blocking(self) -> Tuple[Diagnostic, ...]:
        """Error diagnostics, in legacy raise order (first = the reason
        the fail-fast analysis would have reported)."""
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.ERROR
        )

    @property
    def plan_kind(self) -> Optional[str]:
        """``"empty"``/``"forest"``/``"dirty"``/``"clean"`` when
        rewritable, else None."""
        if self.blocking:
            return None
        if self.empty_reason is not None:
            return "empty"
        if self.forest is not None:
            return "forest"
        return "dirty" if self.dirty_indexes else "clean"


def _term_domain(
    term, variable_types: Dict[str, AttributeType]
) -> AttributeType:
    if isinstance(term, Const):
        return (
            AttributeType.NUMBER
            if isinstance(term.value, int)
            else AttributeType.NAME
        )
    return variable_types[term.name]


def classify(
    formula: Formula,
    schema: DatabaseSchema,
    dependencies: Sequence[FunctionalDependency],
    variables: Optional[Sequence[str]] = None,
) -> Classification:
    """Classify ``formula`` against ``schema`` + ``dependencies``.

    Raises :class:`QueryBindingError` for answer variables that are not
    free in the formula (a caller error, not a routing fact) — exactly
    like the legacy analysis did.
    """
    free = formula.free_variables()
    if variables is None:
        answer_variables = tuple(sorted(free))
    else:
        unknown = set(variables) - free
        if unknown:
            raise QueryBindingError(
                f"answer variables {sorted(unknown)} are not free in the formula"
            )
        answer_variables = tuple(variables)

    diagnostics: List[Diagnostic] = []

    body: Formula = formula
    seen: Set[str] = set(free)
    while isinstance(body, Exists):
        for name in body.variables:
            if name in seen:
                diagnostics.append(
                    make_diagnostic("RA104", subject=name, name=name)
                )
                return Classification(
                    shape=None,
                    diagnostics=tuple(diagnostics),
                    mentioned=(),
                )
            seen.add(name)
        body = body.body

    parts = body.parts if isinstance(body, And) else (body,)
    atoms: List[Atom] = []
    comparisons: List[Comparison] = []
    for part in parts:
        if isinstance(part, Atom):
            atoms.append(part)
        elif isinstance(part, Comparison):
            comparisons.append(part)
        else:
            construct = type(part).__name__
            diagnostics.append(
                make_diagnostic("RA102", subject=construct, construct=construct)
            )
    conjunctive = not any(d.code == "RA102" for d in diagnostics)
    if not atoms and conjunctive:
        diagnostics.append(make_diagnostic("RA103"))

    if atoms:
        atom_variables: Set[str] = set()
        for atom in atoms:
            atom_variables |= atom.free_variables()
        unsafe = sorted(seen - atom_variables)
        if unsafe:
            diagnostics.append(
                make_diagnostic(
                    "RA101", subject=unsafe[0], names=unsafe
                )
            )

    shape = ConjunctiveShape(tuple(atoms), tuple(comparisons), answer_variables)
    mentioned = tuple(sorted({atom.relation for atom in atoms}))
    classification = Classification(
        shape=shape, diagnostics=(), mentioned=mentioned
    )

    # Theory pass: conflict profiles per mentioned relation, sorted —
    # the legacy analysis raised at the first mixed-LHS relation.
    profiles: Dict[str, DirtyProfile] = {}
    for name in mentioned:
        try:
            profile = dirty_profile(schema.relation(name), dependencies)
        except NotRewritable:
            diagnostics.append(
                make_diagnostic("RA301", subject=name, relation=name)
            )
            continue
        if profile is not None:
            profiles[name] = profile
    classification.profiles = profiles

    blocked = any(d.severity is Severity.ERROR for d in diagnostics)
    if not blocked:
        _type_pass(classification, schema)
        if classification.empty_reason is None:
            dirty_indexes = classification.dirty_indexes
            if len(dirty_indexes) > 1:
                classification.forest = plan_forest(
                    shape,
                    classification.profiles,
                    classification.kept_comparisons,
                    schema,
                )
                if classification.forest is None:
                    involved = sorted(
                        {shape.atoms[i].relation for i in dirty_indexes}
                    )
                    diagnostics.append(
                        make_diagnostic(
                            "RA201", subject=involved[0], involved=involved
                        )
                    )

    # Informational verdicts for unblocked queries.
    if not any(d.severity is Severity.ERROR for d in diagnostics):
        if classification.empty_reason is not None:
            diagnostics.append(
                make_diagnostic("RA002", why=classification.empty_reason)
            )
        elif classification.forest is not None:
            diagnostics.append(
                make_diagnostic(
                    "RA011", explanation=classification.forest.explanation
                )
            )
        else:
            kind = "dirty" if classification.dirty_indexes else "clean"
            diagnostics.append(make_diagnostic("RA001", kind=kind))

    classification.diagnostics = tuple(diagnostics)
    return classification


def _type_pass(
    classification: Classification, schema: DatabaseSchema
) -> None:
    """The compiler's static two-domain typing, verbatim.

    Fills ``variable_types``, ``kept_comparisons``, ``empty_reason`` and
    ``dirty_indexes``; stops at the first unsatisfiable conjunct exactly
    like the fail-fast code so the rendered reason is identical.
    """
    shape = classification.shape
    assert shape is not None
    variable_types: Dict[str, AttributeType] = {}
    classification.variable_types = variable_types
    for atom in shape.atoms:
        relation = schema.relation(atom.relation)
        for position, term in enumerate(atom.terms):
            attribute = relation.attributes[position]
            if isinstance(term, Var):
                known = variable_types.setdefault(term.name, attribute.type)
                if known is not attribute.type:
                    classification.empty_reason = (
                        f"variable {term.name!r} joins a name column with a "
                        "number column (disjoint domains)"
                    )
                    return
            else:
                if _term_domain(term, variable_types) is not attribute.type:
                    classification.empty_reason = (
                        f"constant {term.value!r} can never occur in "
                        f"{atom.relation}.{attribute.name}"
                    )
                    return

    kept: List[Comparison] = []
    for comparison in shape.comparisons:
        left = _term_domain(comparison.left, variable_types)
        right = _term_domain(comparison.right, variable_types)
        if comparison.op in ("=", "!="):
            if left is right:
                kept.append(comparison)
            elif comparison.op == "=":
                classification.empty_reason = (
                    f"cross-domain equality {comparison} never holds"
                )
                return
            # cross-domain != always holds: drop it.
        else:
            if left is AttributeType.NUMBER and right is AttributeType.NUMBER:
                kept.append(comparison)
            else:
                # Order comparisons are interpreted over naturals only.
                classification.empty_reason = (
                    f"order comparison {comparison} involves uninterpreted "
                    "names and is identically false"
                )
                return
    classification.kept_comparisons = tuple(kept)
    classification.dirty_indexes = tuple(
        index
        for index, atom in enumerate(shape.atoms)
        if atom.relation in classification.profiles
    )
