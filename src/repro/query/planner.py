"""Selectivity-ordered planning of conjunctive (existential) blocks.

The evaluator treats an existential block ``EXISTS x1..xk . C1 AND ...
AND Cn`` (and likewise the open-query enumeration of answer variables)
as a join problem: each positive relational atom is a generator of
bindings, everything else is a filter.  :func:`plan_block` orders those
conjuncts once per (block, context) into a :class:`BlockPlan` — a flat
step sequence executed as an index-nested-loop join:

* :class:`BindStep` — an equality conjunct pins a variable to a
  constant or an already-bound variable (selectivity 1, always first);
* :class:`AtomStep` — probe one atom, chosen greedily by estimated
  selectivity: most bound columns first (every bound column turns the
  probe into a hash-index lookup), ties broken by smaller relation
  cardinality; the step binds the atom's still-unbound variables;
* :class:`FilterStep` — any other conjunct (comparisons, negations,
  nested quantifiers, disjunctions), emitted as soon as all of its free
  variables are bound so failing bindings are cut off early;
* :class:`DomainStep` — a variable no atom guards falls back to the
  active domain, preserving the evaluator's active-domain semantics.

The cardinality estimate alone misorders skewed data: a relation whose
bound column holds one value in 99% of its rows looks selective by
size but its index probe returns almost the whole relation.  When the
caller supplies ``probe_width_of`` (per-(relation, column-subset)
value-histogram statistics — see
:meth:`~repro.query.evaluator.EvaluationContext.probe_width`), ties on
the bound-column count are broken by the *expected probe result size*
under the data distribution instead, so skewed columns sink in the
order.

Plans depend only on the formula and the relation statistics, so
:class:`~repro.query.evaluator.EvaluationContext` caches them per block
alongside its hash indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.query.ast import And, Atom, Comparison, Const, Formula, Var


@dataclass(frozen=True)
class AtomStep:
    """Probe ``atom`` on its bound columns; ``binds`` lists the variables
    first bound by this step (in term order)."""

    atom: Atom
    binds: Tuple[str, ...]


@dataclass(frozen=True)
class BindStep:
    """Pin ``variable`` to an equality-determined value: a constant or a
    variable bound by an earlier step (or from the enclosing scope)."""

    variable: str
    source: Union[Var, Const]


@dataclass(frozen=True)
class DomainStep:
    """Enumerate the active domain for a variable no atom guards."""

    variable: str


@dataclass(frozen=True)
class FilterStep:
    """Evaluate a non-generating conjunct once its variables are bound."""

    formula: Formula


PlanStep = Union[AtomStep, BindStep, DomainStep, FilterStep]


@dataclass(frozen=True)
class BlockPlan:
    """An ordered join plan for one conjunctive block.

    ``variables`` are the block's own (quantified or answer) variables;
    executing ``steps`` left to right enumerates exactly the bindings of
    those variables under which the block's body holds.
    """

    variables: Tuple[str, ...]
    steps: Tuple[PlanStep, ...]


def conjuncts_of(body: Formula) -> Tuple[Formula, ...]:
    """Top-level conjuncts of a block body (the body itself if not AND)."""
    return body.parts if isinstance(body, And) else (body,)


def _pinning(
    conjunct: Formula, unbound: Set[str], bound: Set[str]
) -> Optional[Tuple[str, Union[Var, Const]]]:
    """``(variable, source)`` when an equality determines an unbound variable."""
    if not isinstance(conjunct, Comparison) or conjunct.op != "=":
        return None
    for mine, other in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        if not isinstance(mine, Var) or mine.name not in unbound:
            continue
        if isinstance(other, Const):
            return mine.name, other
        if other.name in bound:
            return mine.name, other
    return None


def plan_block(
    variables: Sequence[str],
    body: Formula,
    cardinality_of: Callable[[str], int],
    probe_width_of: Optional[Callable[[str, Tuple[int, ...]], float]] = None,
) -> BlockPlan:
    """Order the conjuncts of one block into an executable join plan.

    ``variables`` are the block's own variables; every other free
    variable of ``body`` is treated as bound by the enclosing scope.
    ``cardinality_of`` supplies relation sizes for the selectivity
    estimate (bound-column count first, then cardinality).  The optional
    ``probe_width_of(relation, positions)`` returns the expected number
    of tuples an index probe on ``positions`` yields under the data's
    own value distribution; when given, it breaks bound-column-count
    ties ahead of raw cardinality so value-skewed columns are not
    mistaken for selective ones.
    """
    target = set(variables)
    bound: Set[str] = set(body.free_variables()) - target
    atoms: List[Atom] = []
    filters: List[Tuple[Formula, FrozenSet[str]]] = []
    for conjunct in conjuncts_of(body):
        if isinstance(conjunct, Atom):
            atoms.append(conjunct)
        else:
            filters.append((conjunct, conjunct.free_variables()))
    steps: List[PlanStep] = []

    def flush_filters() -> None:
        remaining = []
        for conjunct, free in filters:
            if free <= bound:
                steps.append(FilterStep(conjunct))
            else:
                remaining.append((conjunct, free))
        filters[:] = remaining

    def bound_positions(atom: Atom) -> Tuple[int, ...]:
        return tuple(
            position
            for position, term in enumerate(atom.terms)
            if isinstance(term, Const) or term.name in bound
        )

    def estimated_width(atom: Atom) -> float:
        if probe_width_of is None:
            return 0.0
        return probe_width_of(atom.relation, bound_positions(atom))

    while True:
        flush_filters()
        pinned = next(
            (
                (index, hit)
                for index, (conjunct, _) in enumerate(filters)
                if (hit := _pinning(conjunct, target - bound, bound))
            ),
            None,
        )
        if pinned is not None:
            index, (name, source) = pinned
            del filters[index]
            steps.append(BindStep(name, source))
            bound.add(name)
            continue
        if atoms:
            best = min(
                range(len(atoms)),
                key=lambda i: (
                    -len(bound_positions(atoms[i])),
                    estimated_width(atoms[i]),
                    cardinality_of(atoms[i].relation),
                    i,
                ),
            )
            atom = atoms.pop(best)
            binds: List[str] = []
            for term in atom.terms:
                if (
                    isinstance(term, Var)
                    and term.name not in bound
                    and term.name not in binds
                ):
                    binds.append(term.name)
            steps.append(AtomStep(atom, tuple(binds)))
            bound.update(binds)
            continue
        unguarded = next(
            (name for name in variables if name not in bound), None
        )
        if unguarded is not None:
            # One domain expansion at a time: binding this variable may
            # turn an equality on the next one into a BindStep instead
            # of another |adom| loop.
            steps.append(DomainStep(unguarded))
            bound.add(unguarded)
            continue
        break
    flush_filters()
    return BlockPlan(tuple(variables), tuple(steps))
