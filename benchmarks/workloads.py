"""Shared workload builders for the benchmark suite.

Workload sizes are chosen so the full ``pytest benchmarks/
--benchmark-only`` run completes in minutes while still exposing the
polynomial-vs-exponential separations of Figure 5: the PTIME rows are
measured on instances far larger than the co-NP rows could ever touch.

Randomized builders default their seeds to the uniform ``--seed`` flag
(via :func:`benchmarks._cli.bench_seed`), so one value reproduces a
whole suite run.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

import pytest

try:
    from benchmarks._cli import bench_seed
except ImportError:  # run with benchmarks/ itself on sys.path
    from _cli import bench_seed

from repro.constraints.conflict_graph import ConflictGraph, build_conflict_graph
from repro.datagen.generators import (
    CHAIN_FDS,
    GRID_FDS,
    chain_instance,
    chain_priority_pairs,
    duplicated_grid_instance,
    duplicated_grid_priority_pairs,
    grid_instance,
)
from repro.priorities.builders import random_priority
from repro.priorities.priority import Priority
from repro.relational.instance import RelationInstance
from repro.repairs.sampling import random_repair


def grid_workload(groups: int, per_group: int = 2):
    """Example-4 style grid with an empty priority."""
    instance = grid_instance(groups, per_group)
    graph = build_conflict_graph(instance, GRID_FDS)
    return instance, graph, Priority(graph, ())


def chain_workload(length: int, oriented_fraction: float = 0.5):
    """Figure-4 style conflict chain with a partially oriented priority."""
    instance = chain_instance(length)
    graph = build_conflict_graph(instance, CHAIN_FDS)
    pairs = chain_priority_pairs(instance)
    keep = max(1, int(len(pairs) * oriented_fraction))
    return instance, graph, Priority(graph, pairs[:keep])


def duplicated_workload(groups: int, dup: int = 2):
    """Example-8 style duplicate groups with the challenger priority."""
    from repro.datagen.generators import DUP_FDS

    instance = duplicated_grid_instance(groups, dup)
    graph = build_conflict_graph(instance, DUP_FDS)
    priority = Priority(graph, duplicated_grid_priority_pairs(instance))
    return instance, graph, priority


def random_workload(n: int, seed: Optional[int] = None, density: float = 0.6):
    """Random key-violating instance with a random partial priority."""
    from repro.datagen.generators import random_inconsistent_instance

    rng = random.Random(bench_seed(seed))
    instance = random_inconsistent_instance(n, key_domain=max(2, n // 3), rng=rng)
    graph = build_conflict_graph(instance, GRID_FDS)
    priority = random_priority(graph, density, rng)
    return instance, graph, priority


def sample_candidate(graph: ConflictGraph, seed: Optional[int] = None):
    """A repair to feed the checking benchmarks."""
    return random_repair(graph, random.Random(bench_seed(seed)))
