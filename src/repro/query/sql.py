"""A conjunctive-SQL frontend.

Figure 5 of the paper distinguishes {∀,∃}-free queries from *conjunctive
queries*; the natural surface syntax for the latter is a SQL
``SELECT``-``FROM``-``WHERE`` block over one or more (self-)joined
relations with an equality/inequality predicate.  This module parses
that fragment and translates it to existentially quantified first-order
formulas consumable by the CQA engines::

    SELECT m1.Salary FROM Mgr m1, Mgr m2
    WHERE m1.Name = 'Mary' AND m2.Name = 'John' AND m1.Salary > m2.Salary

Boolean (closed) queries are expressed by ``SELECT 1 FROM ... WHERE ...``
or by omitting the select list target, and translate to a closed
``EXISTS`` formula.

Only the conjunctive fragment is accepted (no OR, no subqueries, no
aggregation); richer queries should be written directly in the
first-order syntax of :mod:`repro.query.parser`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import QuerySyntaxError
from repro.query.ast import And, Atom, Comparison, Const, Exists, Formula, Term, Var
from repro.relational.schema import DatabaseSchema

_SQL_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|--[^\n]*)
  | (?P<number>\d+)
  | (?P<string>'(?:[^'']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),.*])
    """,
    re.VERBOSE,
)

_SQL_KEYWORDS = {"SELECT", "FROM", "WHERE", "AND", "AS", "DISTINCT"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize_sql(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _SQL_TOKEN_RE.match(text, position)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        value = match.group()
        if match.lastgroup == "ident" and value.upper() in _SQL_KEYWORDS:
            tokens.append(_Token("keyword", value.upper(), match.start()))
        elif match.lastgroup == "op" and value == "<>":
            tokens.append(_Token("op", "!=", match.start()))
        else:
            tokens.append(_Token(match.lastgroup or "punct", value, match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


@dataclass(frozen=True)
class ColumnRef:
    """A ``alias.Attribute`` reference in the select or where clause."""

    alias: str
    attribute: str


@dataclass(frozen=True)
class SelectQuery:
    """Parsed conjunctive SQL query (pre-translation)."""

    select: Tuple[ColumnRef, ...]  # empty means boolean query
    tables: Tuple[Tuple[str, str], ...]  # (relation, alias)
    predicates: Tuple[Tuple[str, object, object], ...]  # (op, lhs, rhs)

    @property
    def is_boolean(self) -> bool:
        return not self.select


class _SqlParser:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize_sql(text)
        self._index = 0

    @property
    def _current(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._current
        self._index += 1
        return token

    def _error(self, message: str) -> QuerySyntaxError:
        token = self._current
        return QuerySyntaxError(f"{message} (near {token.text!r} at {token.position})")

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self._current
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._accept(kind, text)
        if token is None:
            raise self._error(f"expected {text or kind}")
        return token

    def parse(self) -> SelectQuery:
        self._expect("keyword", "SELECT")
        self._accept("keyword", "DISTINCT")
        select = self._select_list()
        self._expect("keyword", "FROM")
        tables = [self._table()]
        while self._accept("punct", ","):
            tables.append(self._table())
        predicates: List[Tuple[str, object, object]] = []
        if self._accept("keyword", "WHERE"):
            predicates.append(self._predicate())
            while self._accept("keyword", "AND"):
                predicates.append(self._predicate())
        if self._current.kind != "eof":
            raise self._error("trailing input after query")
        return SelectQuery(tuple(select), tuple(tables), tuple(predicates))

    def _select_list(self) -> List[ColumnRef]:
        # `SELECT 1` and `SELECT *`... `1` means boolean; `*` is rejected
        # because answer-column order would be ambiguous across aliases.
        if self._accept("number", "1"):
            return []
        if self._current.kind == "punct" and self._current.text == "*":
            raise self._error("SELECT * is not supported; list columns explicitly")
        refs = [self._column_ref()]
        while self._accept("punct", ","):
            refs.append(self._column_ref())
        return refs

    def _column_ref(self) -> ColumnRef:
        alias = self._expect("ident").text
        self._expect("punct", ".")
        attribute = self._expect("ident").text
        return ColumnRef(alias, attribute)

    def _table(self) -> Tuple[str, str]:
        relation = self._expect("ident").text
        self._accept("keyword", "AS")
        alias_token = self._accept("ident")
        alias = alias_token.text if alias_token else relation
        return relation, alias

    def _operand(self) -> object:
        token = self._current
        if token.kind == "number":
            self._advance()
            return int(token.text)
        if token.kind == "string":
            self._advance()
            return token.text[1:-1].replace("''", "'")
        if token.kind == "ident":
            return self._column_ref()
        raise self._error("expected a column reference or literal")

    def _predicate(self) -> Tuple[str, object, object]:
        left = self._operand()
        op = self._expect("op").text
        right = self._operand()
        return op, left, right


def parse_sql(text: str) -> SelectQuery:
    """Parse a conjunctive ``SELECT`` query into its clause structure."""
    return _SqlParser(text).parse()


def sql_to_formula(
    query: Union[str, SelectQuery], schema: DatabaseSchema
) -> Tuple[Formula, Tuple[str, ...]]:
    """Translate conjunctive SQL to first-order logic.

    Returns ``(formula, answer_variables)``.  Boolean queries yield a
    closed ``EXISTS`` formula and an empty variable tuple; queries with a
    select list yield an open formula whose free variables (in select
    order) are the answer columns.
    """
    if isinstance(query, str):
        query = parse_sql(query)

    variable_of: Dict[ColumnRef, Var] = {}
    atoms: List[Atom] = []
    for relation_name, alias in query.tables:
        relation = schema.relation(relation_name)
        terms: List[Term] = []
        for attribute in relation.attribute_names:
            ref = ColumnRef(alias, attribute)
            if ref in variable_of:
                raise QuerySyntaxError(f"duplicate table alias {alias!r}")
            variable = Var(f"v_{alias}_{attribute}")
            variable_of[ref] = variable
            terms.append(variable)
        atoms.append(Atom(relation_name, terms))

    def to_term(operand: object) -> Term:
        if isinstance(operand, ColumnRef):
            if operand not in variable_of:
                raise QuerySyntaxError(
                    f"unknown column {operand.alias}.{operand.attribute}"
                )
            return variable_of[operand]
        return Const(operand)  # type: ignore[arg-type]

    parts: List[Formula] = list(atoms)
    for op, left, right in query.predicates:
        parts.append(Comparison(op, to_term(left), to_term(right)))
    body: Formula = parts[0] if len(parts) == 1 else And(parts)

    answer_vars = tuple(variable_of[ref].name for ref in query.select)
    bound = sorted(
        {var.name for var in variable_of.values()} - set(answer_vars)
    )
    formula: Formula = Exists(bound, body) if bound else body
    return formula, answer_vars
