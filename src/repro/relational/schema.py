"""Relation and database schemas.

A :class:`RelationSchema` is an ordered list of typed attributes; a
:class:`DatabaseSchema` maps relation names to relation schemas.  The
paper works with a single relation ``R`` over attributes ``U`` "for the
sake of clarity" and notes the framework extends to multiple relations
along the lines of [7]; we support both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple, Union

from repro.exceptions import SchemaError, UnknownAttributeError, UnknownRelationError
from repro.relational.domain import AttributeType, Value


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of a relation schema."""

    name: str
    type: AttributeType = AttributeType.NAME

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid attribute name {self.name!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}:{self.type.value}"


def _coerce_attribute(spec: Union[Attribute, str, Tuple[str, AttributeType]]) -> Attribute:
    """Accept ``Attribute``, ``"Name"``, ``"Name:number"`` or ``(name, type)``."""
    if isinstance(spec, Attribute):
        return spec
    if isinstance(spec, tuple):
        name, attr_type = spec
        return Attribute(name, attr_type)
    if ":" in spec:
        name, _, type_text = spec.partition(":")
        try:
            attr_type = AttributeType(type_text.strip())
        except ValueError as exc:
            raise SchemaError(f"unknown attribute type {type_text!r}") from exc
        return Attribute(name.strip(), attr_type)
    return Attribute(spec.strip())


class RelationSchema:
    """Schema of a single relation: a name and an ordered attribute list.

    Attribute specs may be :class:`Attribute` objects, bare names
    (defaulting to the NAME domain), ``"Salary:number"`` strings, or
    ``(name, AttributeType)`` pairs::

        RelationSchema("Mgr", ["Name", "Dept", "Salary:number", "Reports:number"])
    """

    __slots__ = ("name", "attributes", "_index")

    def __init__(
        self,
        name: str,
        attributes: Sequence[Union[Attribute, str, Tuple[str, AttributeType]]],
    ) -> None:
        if not name or not name.replace("_", "").isalnum():
            raise SchemaError(f"invalid relation name {name!r}")
        attrs = tuple(_coerce_attribute(spec) for spec in attributes)
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        names = [attr.name for attr in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in relation {name!r}: {names}")
        self.name = name
        self.attributes = attrs
        self._index: Dict[str, int] = {attr.name: pos for pos, attr in enumerate(attrs)}

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(attr.name for attr in self.attributes)

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    def index_of(self, attribute: str) -> int:
        """Position of ``attribute``; raises :class:`UnknownAttributeError`."""
        try:
            return self._index[attribute]
        except KeyError as exc:
            raise UnknownAttributeError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from exc

    def type_of(self, attribute: str) -> AttributeType:
        """Domain of ``attribute``."""
        return self.attributes[self.index_of(attribute)].type

    def has_attribute(self, attribute: str) -> bool:
        """Whether ``attribute`` belongs to this schema."""
        return attribute in self._index

    def validate_values(self, values: Sequence[Value]) -> Tuple[Value, ...]:
        """Type-check a value sequence against the schema; return a tuple."""
        if len(values) != self.arity:
            raise SchemaError(
                f"relation {self.name!r} has arity {self.arity}, "
                f"got {len(values)} values: {values!r}"
            )
        return tuple(
            attr.type.validate(value) for attr, value in zip(self.attributes, values)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        attrs = ", ".join(str(attr) for attr in self.attributes)
        return f"RelationSchema({self.name}({attrs}))"


class DatabaseSchema:
    """A collection of relation schemas keyed by relation name."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[RelationSchema]) -> None:
        self._relations: Dict[str, RelationSchema] = {}
        for relation in relations:
            if relation.name in self._relations:
                raise SchemaError(f"duplicate relation name {relation.name!r}")
            self._relations[relation.name] = relation

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def relation(self, name: str) -> RelationSchema:
        """Schema of relation ``name``; raises :class:`UnknownRelationError`."""
        try:
            return self._relations[name]
        except KeyError as exc:
            raise UnknownRelationError(f"unknown relation {name!r}") from exc

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._relations.items())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DatabaseSchema({sorted(self._relations)})"


def schema_from_mapping(spec: Mapping[str, Sequence[str]]) -> DatabaseSchema:
    """Build a :class:`DatabaseSchema` from ``{"R": ["A", "B:number"], ...}``."""
    return DatabaseSchema(
        RelationSchema(name, attrs) for name, attrs in spec.items()
    )
