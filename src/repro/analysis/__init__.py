"""Static analysis of queries against FD theories and priorities.

The single source of truth for route decisions: every fallback
condition the engines enforce is a catalogued :class:`Diagnostic`, and
:func:`analyze` predicts — without touching instance data — the route
each engine takes, as a cacheable :class:`RouteReport`.
"""

from .analyzer import analyze, profiled_relations
from .cforest import CForest, plan_forest, recognize_c_forest
from .model import (
    CATALOG,
    FULL_CODES,
    Diagnostic,
    RouteReport,
    Severity,
    Span,
    fallback_route,
    make_diagnostic,
    theory_fingerprint,
)
from .profiles import DirtyProfile, NotRewritable, dirty_profile
from .shapes import Classification, ConjunctiveShape, classify

__all__ = [
    "CATALOG",
    "CForest",
    "FULL_CODES",
    "Classification",
    "ConjunctiveShape",
    "Diagnostic",
    "DirtyProfile",
    "NotRewritable",
    "RouteReport",
    "Severity",
    "Span",
    "analyze",
    "classify",
    "dirty_profile",
    "fallback_route",
    "make_diagnostic",
    "plan_forest",
    "profiled_relations",
    "recognize_c_forest",
    "theory_fingerprint",
]
