"""Isolate process-wide obs state: every test starts with an empty
metrics registry and a fresh, fully sampling flight recorder."""

from __future__ import annotations

import pytest

from repro.obs import RECORDER, REGISTRY


def _reset_obs() -> None:
    REGISTRY.reset()
    REGISTRY.enabled = True
    RECORDER.reset()
    RECORDER.enabled = True
    RECORDER.configure(
        sample_rate=1.0, slow_ms=None, capacity=256, slow_capacity=64
    )


@pytest.fixture(autouse=True)
def clean_obs():
    _reset_obs()
    yield
    _reset_obs()
