"""Side-table materialization and priority-edge validation."""

from __future__ import annotations

import sqlite3

import pytest

from repro.backend.rewrite import dirty_profile
from repro.constraints.fd import FunctionalDependency
from repro.exceptions import CyclicPriorityError, NonConflictingPriorityError
from repro.prefsql.edges import (
    SIDE_CONFLICTS,
    SIDE_EDGES,
    digraph_has_cycle,
    ensure_side_tables,
    materialize_conflicts,
    materialize_edges,
)
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema
from repro.relational.sqlite_io import load_schema, save_database

SCHEMA = RelationSchema("R", ["K", "A:number", "B"])
FDS = [FunctionalDependency.parse("K -> A", "R")]

ROWS = [
    ("k0", 0, "x"),
    ("k0", 1, "y"),
    ("k0", 2, "z"),
    ("k1", 0, "x"),
    ("c0", 9, "q"),
]


def _setup(rows=ROWS):
    database = Database([RelationInstance.from_values(SCHEMA, rows)])
    connection = sqlite3.connect(":memory:")
    save_database(database, connection, FDS)
    ensure_side_tables(connection)
    return connection


def _row(*values) -> Row:
    return Row(SCHEMA, values)


class TestConflictMaterialization:
    def test_counts_match_the_multipartite_structure(self):
        connection = _setup()
        profile = dirty_profile(SCHEMA, FDS)
        stored = materialize_conflicts(connection, profile)
        # k0 holds three singleton classes (3 choose 2 edges); k1 and c0
        # are conflict-free.
        assert stored == 3
        records = connection.execute(
            f"SELECT COUNT(*) FROM {SIDE_CONFLICTS} WHERE relation = 'R'"
        ).fetchone()
        assert records[0] == 3

    def test_rematerialization_replaces_stale_edges(self):
        connection = _setup()
        profile = dirty_profile(SCHEMA, FDS)
        materialize_conflicts(connection, profile)
        assert materialize_conflicts(connection, profile) == 3

    def test_edges_are_rowid_pairs_with_a_less_than_b(self):
        connection = _setup()
        materialize_conflicts(connection, dirty_profile(SCHEMA, FDS))
        for a, b in connection.execute(
            f"SELECT a, b FROM {SIDE_CONFLICTS}"
        ).fetchall():
            assert a < b


class TestEdgeMaterialization:
    def test_valid_edges_are_stored(self):
        connection = _setup()
        schema = load_schema(connection)
        profiles = {"R": dirty_profile(SCHEMA, FDS)}
        counts = materialize_edges(
            connection,
            schema,
            FDS,
            profiles,
            [(_row("k0", 1, "y"), _row("k0", 0, "x"))],
        )
        assert counts == {"R": 1}
        stored = connection.execute(
            f"SELECT COUNT(*) FROM {SIDE_EDGES}"
        ).fetchone()[0]
        assert stored == 1

    def test_non_conflicting_pair_is_rejected(self):
        connection = _setup()
        schema = load_schema(connection)
        with pytest.raises(NonConflictingPriorityError):
            materialize_edges(
                connection,
                schema,
                FDS,
                {"R": dirty_profile(SCHEMA, FDS)},
                [(_row("k0", 1, "y"), _row("k1", 0, "x"))],
            )

    def test_missing_row_is_rejected(self):
        connection = _setup()
        schema = load_schema(connection)
        with pytest.raises(NonConflictingPriorityError, match="not in"):
            materialize_edges(
                connection,
                schema,
                FDS,
                {"R": dirty_profile(SCHEMA, FDS)},
                [(_row("k0", 1, "y"), _row("k0", 7, "nope"))],
            )

    def test_cyclic_declaration_is_rejected(self):
        connection = _setup()
        schema = load_schema(connection)
        cycle = [
            (_row("k0", 0, "x"), _row("k0", 1, "y")),
            (_row("k0", 1, "y"), _row("k0", 2, "z")),
            (_row("k0", 2, "z"), _row("k0", 0, "x")),
        ]
        assert digraph_has_cycle(cycle)
        with pytest.raises(CyclicPriorityError):
            materialize_edges(
                connection,
                schema,
                FDS,
                {"R": dirty_profile(SCHEMA, FDS)},
                cycle,
            )

    def test_unprofiled_relations_validate_but_do_not_materialize(self):
        """Edges over a mixed-LHS relation are checked, not stored."""
        mixed_schema = RelationSchema(
            "M", ["A:number", "B:number", "C:number", "D:number"]
        )
        mixed_fds = [
            FunctionalDependency.parse("A -> B", "M"),
            FunctionalDependency.parse("C -> D", "M"),
        ]
        database = Database(
            [RelationInstance.from_values(mixed_schema, [(0, 0, 5, 1), (0, 1, 6, 2)])]
        )
        connection = sqlite3.connect(":memory:")
        save_database(database, connection, mixed_fds)
        ensure_side_tables(connection)
        schema = load_schema(connection)
        winner = Row(mixed_schema, (0, 0, 5, 1))
        loser = Row(mixed_schema, (0, 1, 6, 2))
        counts = materialize_edges(
            connection, schema, mixed_fds, {}, [(winner, loser)]
        )
        assert counts == {}
        with pytest.raises(NonConflictingPriorityError):
            materialize_edges(
                connection,
                schema,
                mixed_fds,
                {},
                [(winner, Row(mixed_schema, (1, 1, 7, 2)))],
            )
