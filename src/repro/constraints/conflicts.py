"""Conflict detection for functional dependencies.

Tuples ``t1, t2`` are *conflicting* w.r.t. ``X → Y`` when they agree on
``X`` and differ on some attribute of ``Y`` (paper Section 2.1).  A
database is inconsistent iff it contains a conflicting pair.

Detection is bucketed: rows are grouped by their LHS projection, and
within a group by their RHS projection — two rows conflict iff they
share an LHS bucket but sit in different RHS sub-buckets.  This keeps
construction near-linear when conflicts are sparse instead of the naive
all-pairs scan.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.constraints.fd import FunctionalDependency
from repro.relational.rows import Row

#: An undirected conflict edge, as an unordered pair.
ConflictEdge = FrozenSet[Row]


def edge(first: Row, second: Row) -> ConflictEdge:
    """The unordered pair of two rows."""
    return frozenset((first, second))


def conflicting_pairs(
    rows: Iterable[Row],
    dependencies: Sequence[FunctionalDependency],
) -> Iterator[Tuple[Row, Row, FunctionalDependency]]:
    """Yield every conflicting pair with the dependency it violates.

    A pair violating several dependencies is reported once per
    dependency (callers that only need the edge set dedupe trivially).
    """
    rows = list(rows)
    for dependency in dependencies:
        lhs = tuple(sorted(dependency.lhs))
        rhs = tuple(sorted(dependency.rhs))
        buckets: Dict[Tuple[str, Tuple], List[Row]] = {}
        for row in rows:
            if not dependency.applies_to(row.relation):
                continue
            if not all(row.schema.has_attribute(attr) for attr in lhs + rhs):
                continue
            buckets.setdefault((row.relation, row.project(lhs)), []).append(row)
        for bucket in buckets.values():
            if len(bucket) < 2:
                continue
            by_rhs: Dict[Tuple, List[Row]] = {}
            for row in bucket:
                by_rhs.setdefault(row.project(rhs), []).append(row)
            groups = list(by_rhs.values())
            for i, group in enumerate(groups):
                for other in groups[i + 1 :]:
                    for first in group:
                        for second in other:
                            yield first, second, dependency


def find_conflicts(
    rows: Iterable[Row],
    dependencies: Sequence[FunctionalDependency],
) -> Dict[ConflictEdge, Set[FunctionalDependency]]:
    """All conflict edges, each labelled with the violated dependencies."""
    conflicts: Dict[ConflictEdge, Set[FunctionalDependency]] = {}
    for first, second, dependency in conflicting_pairs(rows, dependencies):
        conflicts.setdefault(edge(first, second), set()).add(dependency)
    return conflicts


def is_consistent(
    rows: Iterable[Row],
    dependencies: Sequence[FunctionalDependency],
) -> bool:
    """Whether the set of rows satisfies every dependency."""
    for _ in conflicting_pairs(rows, dependencies):
        return False
    return True
