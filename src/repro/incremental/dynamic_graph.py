"""A mutable conflict graph that absorbs single-tuple updates.

:class:`~repro.constraints.conflict_graph.ConflictGraph` is immutable:
every update to the instance forces a full rebuild.  This module keeps
the same graph *incrementally*: per functional dependency it maintains
the LHS/RHS bucket indexes that
:func:`repro.constraints.conflicts.conflicting_pairs` builds transiently,
so ``insert(row)`` / ``delete(row)`` derives the delta edge set from the
affected buckets alone — time proportional to the touched key groups,
not to the instance.

Connected components are maintained alongside the adjacency:

* an **insert** merges the components of the new row's conflict
  neighbours (plus the row itself) into one;
* a **delete** may split its component — the remaining members are
  re-partitioned by a traversal confined to that one component.

Each mutation returns a :class:`GraphDelta` naming the changed edges and
the components whose vertex sets changed, which is exactly the
invalidation signal the component-scoped caches key on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
)

from repro.constraints.conflict_graph import ConflictGraph
from repro.constraints.conflicts import ConflictEdge, edge
from repro.constraints.fd import FunctionalDependency
from repro.exceptions import UpdateError
from repro.relational.rows import Row, sorted_rows

#: Bucket key: (relation name, LHS projection of the row).
_BucketKey = Tuple[str, Tuple]


@dataclass(frozen=True)
class GraphDelta:
    """The effect of one mutation on the conflict graph.

    ``touched_components`` holds the *current* (post-update) vertex sets
    of every component that gained or lost a vertex or edge; a deleted
    row's old component contributes its surviving pieces.  Components
    not listed are bit-for-bit unchanged, so any cache keyed on a
    component's vertex set stays valid for them.
    """

    added_vertices: FrozenSet[Row] = frozenset()
    removed_vertices: FrozenSet[Row] = frozenset()
    added_edges: FrozenSet[ConflictEdge] = frozenset()
    removed_edges: FrozenSet[ConflictEdge] = frozenset()
    touched_components: Tuple[FrozenSet[Row], ...] = ()

    @property
    def is_noop(self) -> bool:
        return not (self.added_vertices or self.removed_vertices)


class DynamicConflictGraph:
    """A conflict graph under tuple-level inserts and deletes.

    Mirrors the read API of :class:`ConflictGraph` (``neighbours``,
    ``edges``, ``edge_labels``, ``connected_components``, ...) while
    supporting mutation.  ``snapshot()`` produces an equivalent
    immutable graph for interop with the batch machinery.
    """

    def __init__(
        self,
        rows: Iterable[Row] = (),
        dependencies: Sequence[FunctionalDependency] = (),
    ) -> None:
        self.dependencies: Tuple[FunctionalDependency, ...] = tuple(dependencies)
        #: Per dependency: (dependency, sorted LHS, sorted RHS).
        self._fd_specs = [
            (dep, tuple(sorted(dep.lhs)), tuple(sorted(dep.rhs)))
            for dep in self.dependencies
        ]
        #: Per dependency index: LHS bucket -> RHS projection -> rows.
        self._buckets: List[Dict[_BucketKey, Dict[Tuple, Set[Row]]]] = [
            {} for _ in self._fd_specs
        ]
        self._vertices: Set[Row] = set()
        self._adjacency: Dict[Row, Set[Row]] = {}
        self._labels: Dict[ConflictEdge, Set[FunctionalDependency]] = {}
        self._comp_of: Dict[Row, int] = {}
        self._members: Dict[int, Set[Row]] = {}
        self._next_component_id = 0
        for row in rows:
            self.insert(row)

    # Mutation ---------------------------------------------------------------

    def insert(self, row: Row) -> GraphDelta:
        """Add ``row``; returns the delta (a no-op if already present)."""
        if row in self._vertices:
            return GraphDelta()
        new_edges: Dict[ConflictEdge, Set[FunctionalDependency]] = {}
        for index, (dependency, lhs, rhs) in enumerate(self._fd_specs):
            if not dependency.applies_to(row.relation):
                continue
            if not all(row.schema.has_attribute(attr) for attr in lhs + rhs):
                continue
            key: _BucketKey = (row.relation, row.project(lhs))
            groups = self._buckets[index].setdefault(key, {})
            my_rhs = row.project(rhs)
            for other_rhs, others in groups.items():
                if other_rhs == my_rhs:
                    continue
                for other in others:
                    new_edges.setdefault(edge(row, other), set()).add(dependency)
            groups.setdefault(my_rhs, set()).add(row)
        self._vertices.add(row)
        self._adjacency[row] = set()
        for pair, labels in new_edges.items():
            first, second = tuple(pair)
            self._adjacency[first].add(second)
            self._adjacency[second].add(first)
            self._labels[pair] = labels
        component = self._merge_components_around(row)
        return GraphDelta(
            added_vertices=frozenset({row}),
            added_edges=frozenset(new_edges),
            touched_components=(component,),
        )

    def delete(self, row: Row) -> GraphDelta:
        """Remove ``row``; raises :class:`UpdateError` if absent."""
        if row not in self._vertices:
            raise UpdateError(f"cannot delete {row!r}: not in the instance")
        for index, (dependency, lhs, rhs) in enumerate(self._fd_specs):
            if not dependency.applies_to(row.relation):
                continue
            if not all(row.schema.has_attribute(attr) for attr in lhs + rhs):
                continue
            key: _BucketKey = (row.relation, row.project(lhs))
            groups = self._buckets[index].get(key)
            if groups is None:
                continue
            my_rhs = row.project(rhs)
            bucket = groups.get(my_rhs)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del groups[my_rhs]
            if not groups:
                del self._buckets[index][key]
        neighbours = self._adjacency.pop(row)
        removed_edges = set()
        for other in neighbours:
            pair = edge(row, other)
            removed_edges.add(pair)
            del self._labels[pair]
            self._adjacency[other].discard(row)
        self._vertices.discard(row)
        pieces = self._split_component_after(row, neighbours)
        return GraphDelta(
            removed_vertices=frozenset({row}),
            removed_edges=frozenset(removed_edges),
            touched_components=pieces,
        )

    def apply(
        self, inserts: Iterable[Row] = (), deletes: Iterable[Row] = ()
    ) -> List[GraphDelta]:
        """Apply ``deletes`` then ``inserts``; returns one delta each."""
        deltas = [self.delete(row) for row in deletes]
        deltas.extend(self.insert(row) for row in inserts)
        return deltas

    # Component maintenance ----------------------------------------------------

    def _fresh_component(self, members: Set[Row]) -> int:
        cid = self._next_component_id
        self._next_component_id += 1
        self._members[cid] = members
        for member in members:
            self._comp_of[member] = cid
        return cid

    def _merge_components_around(self, row: Row) -> FrozenSet[Row]:
        """Union the components adjacent to a just-inserted ``row``."""
        neighbour_ids = {self._comp_of[other] for other in self._adjacency[row]}
        if not neighbour_ids:
            self._fresh_component({row})
            return frozenset({row})
        # Grow the largest member set in place; relabel the smaller ones.
        target = max(neighbour_ids, key=lambda cid: len(self._members[cid]))
        merged = self._members[target]
        for cid in neighbour_ids:
            if cid == target:
                continue
            for member in self._members.pop(cid):
                self._comp_of[member] = target
                merged.add(member)
        merged.add(row)
        self._comp_of[row] = target
        return frozenset(merged)

    def _split_component_after(
        self, row: Row, old_neighbours: Set[Row]
    ) -> Tuple[FrozenSet[Row], ...]:
        """Re-partition the deleted row's component; returns the pieces."""
        cid = self._comp_of.pop(row)
        members = self._members[cid]
        members.discard(row)
        if not members:
            del self._members[cid]
            return ()
        if not old_neighbours:
            # The row was isolated inside... impossible: an isolated row is
            # its own singleton component, handled above.  Defensive only.
            return (frozenset(members),)  # pragma: no cover
        pieces: List[Set[Row]] = []
        unseen = set(members)
        while unseen:
            start = unseen.pop()
            piece = {start}
            stack = [start]
            while stack:
                vertex = stack.pop()
                for other in self._adjacency[vertex]:
                    if other not in piece:
                        piece.add(other)
                        unseen.discard(other)
                        stack.append(other)
            pieces.append(piece)
        if len(pieces) == 1:
            return (frozenset(members),)
        del self._members[cid]
        return tuple(
            frozenset(self._members[self._fresh_component(piece)])
            for piece in pieces
        )

    # Read API (mirrors ConflictGraph) ----------------------------------------

    @property
    def vertices(self) -> FrozenSet[Row]:
        return frozenset(self._vertices)

    @property
    def vertex_count(self) -> int:
        return len(self._vertices)

    @property
    def edge_count(self) -> int:
        return len(self._labels)

    def __len__(self) -> int:
        return len(self._vertices)

    def __contains__(self, row: object) -> bool:
        return row in self._vertices

    def neighbours(self, row: Row) -> FrozenSet[Row]:
        return frozenset(self._adjacency[row])

    def vicinity(self, row: Row) -> FrozenSet[Row]:
        return frozenset(self._adjacency[row]) | {row}

    def are_conflicting(self, first: Row, second: Row) -> bool:
        return second in self._adjacency.get(first, ())

    def edges(self) -> Iterator[ConflictEdge]:
        return iter(self._labels)

    def edge_labels(self, pair: ConflictEdge) -> FrozenSet[FunctionalDependency]:
        return frozenset(self._labels[pair])

    def degree(self, row: Row) -> int:
        return len(self._adjacency[row])

    def component_of(self, row: Row) -> FrozenSet[Row]:
        """Vertex set of the component containing ``row``."""
        return frozenset(self._members[self._comp_of[row]])

    def component_id_of(self, row: Row) -> int:
        """Opaque id of ``row``'s component (stable between mutations)."""
        return self._comp_of[row]

    def connected_components(self) -> List[FrozenSet[Row]]:
        """Current components in deterministic (min-row) order."""
        frozen = [frozenset(members) for members in self._members.values()]
        return sorted(frozen, key=lambda comp: min(comp))

    @property
    def component_count(self) -> int:
        return len(self._members)

    @property
    def conflict_component_count(self) -> int:
        """Components holding at least one conflict edge."""
        return sum(1 for members in self._members.values() if len(members) > 1)

    # Interop ------------------------------------------------------------------

    def induced_component(self, component: FrozenSet[Row]) -> ConflictGraph:
        """An immutable induced subgraph for one component's vertex set."""
        labels = {
            pair: frozenset(fds)
            for pair, fds in self._labels.items()
            if pair <= component
        }
        return ConflictGraph(component, labels)

    def snapshot(self) -> ConflictGraph:
        """An immutable copy of the whole current graph."""
        return ConflictGraph(
            self._vertices,
            {pair: frozenset(fds) for pair, fds in self._labels.items()},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicConflictGraph({len(self._vertices)} vertices, "
            f"{len(self._labels)} edges, {len(self._members)} components)"
        )
