"""Recognizer and structural planner for C_forest key-join trees.

The multi-dirty fallback (``RA201``) is not the end of the story: the
ConQuer line of work (Fuxman & Miller) proves that conjunctive queries
whose dirty atoms form *key-join trees* — every join path into a dirty
atom enters through that atom's full key — remain first-order
rewritable.  :func:`plan_forest` detects the shape and, when it holds,
returns the oriented structure the compiler
(:func:`repro.backend.rewrite.compile_plan`) turns into recursive
``NOT EXISTS`` certifications; :func:`classify` attaches the matching
``RA011`` explanation and drops the ``RA201`` blocker.

Detection criteria, over **all** atoms of the conjunction (clean atoms
included — two dirty atoms correlated through a chain of clean atoms
couple their repair choices just as surely as a direct join, the
historical blind spot this analysis closes):

* at least two dirty atoms, each over a *distinct* relation (dirty
  self-joins stay outside C_forest);
* every connected component of the variable-sharing graph that contains
  a dirty atom is a tree (acyclic — in particular no variable occurs in
  three atoms of such a component);
* each such tree can be rooted so that for every tree edge whose child
  is a dirty atom, every key position of the child holds a constant or
  a variable of the parent atom, and every variable the child shares
  with its parent occurs only in key positions of the child (non-key
  sharing would correlate repair choices);
* every retained comparison is evaluable in a single certification
  region (see below) or in the outer scope alone.

Clean-only components are unconstrained: consistent relations are
identical in every repair and never couple repair choices.

The resulting :class:`CForest` partitions the atoms into *regions*: a
dirty atom ``d`` owns itself plus the clean atoms below it (until the
next dirty atom), which quantify together in ``d``'s certification
scope; each dirty descendant hangs off a parent-region atom and is
certified recursively, correlated only through its full key.  Atoms
above every dirty atom stay in the outer scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.query.ast import Atom, Comparison, Const, Var

from .model import Diagnostic
from .profiles import DirtyProfile


@dataclass(frozen=True)
class CForest:
    """The oriented key-join structure of a multi-dirty conjunction.

    All indexes are positions into the classified shape's ``atoms``.
    """

    #: Dirty atoms with no dirty ancestor — certified from the outer
    #: scope, keyed on their own outer alias; in body order.
    roots: Tuple[int, ...]
    #: Certification scope per dirty atom: itself first, then the clean
    #: atoms it quantifies together with, in body order.
    regions: Dict[int, Tuple[int, ...]]
    #: Dirty descendants per dirty atom, as ``(child, attach)`` pairs:
    #: ``child`` is the dirty atom certified recursively, ``attach`` the
    #: parent-region atom its key terms are read from.
    children: Dict[int, Tuple[Tuple[int, int], ...]]
    #: Comparisons that must be re-checked inside a dirty atom's
    #: certification scope (they constrain re-quantified variables).
    region_comparisons: Dict[int, Tuple[Comparison, ...]]
    #: ``(attach, child)`` key-join entries over all trees (explanation).
    keyed: Tuple[Tuple[int, int], ...]
    #: Human-readable account of the structure (the ``RA011`` message).
    explanation: str


def _atom_variables(atom: Atom) -> Set[str]:
    return {term.name for term in atom.terms if isinstance(term, Var)}


def _key_positions(atom: Atom, profile: DirtyProfile, schema) -> List[int]:
    relation = schema.relation(atom.relation)
    group = set(profile.group)
    return [
        position
        for position, attribute in enumerate(relation.attributes)
        if attribute.name in group
    ]


def _edge_ok(
    parent: Atom,
    child: Atom,
    child_profile: DirtyProfile,
    schema,
) -> bool:
    """Is parent→child a key join? (child entered through its full key)"""
    parent_vars = _atom_variables(parent)
    key_positions = set(_key_positions(child, child_profile, schema))
    for position in key_positions:
        term = child.terms[position]
        if isinstance(term, Var) and term.name not in parent_vars:
            return False
    shared = parent_vars & _atom_variables(child)
    for position, term in enumerate(child.terms):
        if position in key_positions:
            continue
        if isinstance(term, Var) and term.name in shared:
            return False
    return True


def _orient_tree(
    members: Sequence[int],
    adjacency: Dict[int, Set[int]],
    atoms: Sequence[Atom],
    profiles: Dict[str, DirtyProfile],
    dirty_set: Set[int],
    schema,
) -> Optional[Dict[int, Optional[int]]]:
    """Parent pointers for one tree, or ``None`` when no rooting makes
    every entry into a dirty atom a key join.  Edges into *clean*
    children are unconstrained (consistent relations join freely); the
    trees are tiny, trying every root is fine."""
    for root in sorted(members):
        parent: Dict[int, Optional[int]] = {root: None}
        stack = [root]
        good = True
        while stack and good:
            node = stack.pop()
            for neighbour in sorted(adjacency[node]):
                if neighbour in parent:
                    continue
                if neighbour in dirty_set and not _edge_ok(
                    atoms[node],
                    atoms[neighbour],
                    profiles[atoms[neighbour].relation],
                    schema,
                ):
                    good = False
                    break
                parent[neighbour] = node
                stack.append(neighbour)
        if good and len(parent) == len(members):
            return parent
    return None


def _comparison_variables(comparison: Comparison) -> Set[str]:
    return {
        term.name
        for term in (comparison.left, comparison.right)
        if isinstance(term, Var)
    }


def plan_forest(
    shape,
    profiles: Dict[str, DirtyProfile],
    kept_comparisons: Sequence[Comparison],
    schema,
) -> Optional[CForest]:
    """The :class:`CForest` structure of ``shape``, or ``None`` when the
    conjunction is outside the (conservatively recognized) fragment.

    ``shape`` is a :class:`~repro.analysis.shapes.ConjunctiveShape`
    that already passed the shape, safety, theory and typing analyses.
    """
    atoms = shape.atoms
    answers = set(shape.answer_variables)
    dirty = [
        index for index, atom in enumerate(atoms) if atom.relation in profiles
    ]
    if len(dirty) < 2:
        return None
    relations = [atoms[index].relation for index in dirty]
    if len(set(relations)) != len(relations):
        return None  # dirty self-join: outside C_forest
    dirty_set = set(dirty)

    # Variable-sharing graph over ALL atoms: a clean chain between two
    # dirty atoms correlates them exactly like a direct edge.
    occurrences: Dict[str, List[int]] = {}
    for index, atom in enumerate(atoms):
        for name in _atom_variables(atom):
            occurrences.setdefault(name, []).append(index)
    edges: Set[Tuple[int, int]] = set()
    for indexes in occurrences.values():
        for a in indexes:
            for b in indexes:
                if a < b:
                    edges.add((a, b))
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(len(atoms))}
    for a, b in edges:
        adjacency[a].add(b)
        adjacency[b].add(a)

    visited: Set[int] = set()
    parent: Dict[int, Optional[int]] = {}
    for start in range(len(atoms)):
        if start in visited:
            continue
        component = []
        stack = [start]
        visited.add(start)
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbour in adjacency[node]:
                if neighbour not in visited:
                    visited.add(neighbour)
                    stack.append(neighbour)
        if not (set(component) & dirty_set):
            continue  # clean-only component: outer scope, unconstrained
        member_set = set(component)
        component_edges = [edge for edge in edges if edge[0] in member_set]
        if len(component_edges) != len(component) - 1:
            return None  # join cycle through a dirty component
        orientation = _orient_tree(
            component, adjacency, atoms, profiles, dirty_set, schema
        )
        if orientation is None:
            return None
        parent.update(orientation)

    def owner(index: int) -> Optional[int]:
        """Nearest dirty strict ancestor in the oriented forest."""
        node = parent.get(index)
        while node is not None and node not in dirty_set:
            node = parent[node]
        return node

    roots = tuple(d for d in dirty if owner(d) is None)
    regions: Dict[int, Tuple[int, ...]] = {}
    children: Dict[int, Tuple[Tuple[int, int], ...]] = {}
    for d in dirty:
        regions[d] = (d,) + tuple(
            index
            for index in sorted(parent)
            if index not in dirty_set and owner(index) == d
        )
        children[d] = tuple(
            (child, parent[child])
            for child in dirty
            if owner(child) == d
        )

    # Comparison placement: a comparison constraining a variable that a
    # certification scope re-quantifies must be evaluable inside that
    # one scope (its other operands available there or pinned answers);
    # a comparison needing two scopes would correlate them outside the
    # key paths, so the whole plan is rejected.
    region_variables: Dict[int, Set[str]] = {}
    requantified: Dict[int, Set[str]] = {}
    for d in dirty:
        region_variables[d] = set()
        for index in regions[d]:
            region_variables[d] |= _atom_variables(atoms[index])
        key_variables = {
            atoms[d].terms[position].name
            for position in _key_positions(
                atoms[d], profiles[atoms[d].relation], schema
            )
            if isinstance(atoms[d].terms[position], Var)
        }
        requantified[d] = region_variables[d] - key_variables - answers
    placed: Dict[int, List[Comparison]] = {d: [] for d in dirty}
    for comparison in kept_comparisons:
        names = _comparison_variables(comparison)
        requiring = [d for d in dirty if names & requantified[d]]
        if len(requiring) > 1:
            return None
        if requiring:
            d = requiring[0]
            if not names <= region_variables[d] | answers:
                return None
            placed[d].append(comparison)

    keyed = tuple(
        sorted(
            (parent[d], d)
            for d in dirty
            if parent[d] is not None
        )
    )
    return CForest(
        roots=roots,
        regions=regions,
        children=children,
        region_comparisons={d: tuple(placed[d]) for d in dirty},
        keyed=keyed,
        explanation=_explain(atoms, dirty, keyed, profiles),
    )


def _explain(
    atoms: Sequence[Atom],
    dirty: Sequence[int],
    keyed: Sequence[Tuple[int, int]],
    profiles: Dict[str, DirtyProfile],
) -> str:
    if not keyed:
        involved = ", ".join(atoms[d].relation for d in dirty)
        return (
            f"independent dirty atoms {involved}: no join path links "
            "their repair choices, so per-atom certification composes "
            "as a cross product"
        )
    steps = []
    for attach, child in sorted(keyed, key=lambda edge: edge[1]):
        profile = profiles[atoms[child].relation]
        steps.append(
            f"{atoms[child].relation} joins {atoms[attach].relation} "
            f"through its key {list(profile.group)}"
        )
    return "multi-atom dirty join follows key paths: " + "; ".join(steps)


def recognize_c_forest(classification, schema) -> Optional[Diagnostic]:
    """The ``RA011`` diagnostic of a classification, when the dirty
    atoms form a key-join forest, else ``None``.

    The forest analysis itself runs inside
    :func:`repro.analysis.shapes.classify` (it also decides whether
    ``RA201`` blocks); this accessor is kept for callers that hold a
    :class:`~repro.analysis.shapes.Classification`.
    """
    del schema  # retained for signature compatibility
    for diagnostic in classification.diagnostics:
        if diagnostic.code == "RA011":
            return diagnostic
    return None
