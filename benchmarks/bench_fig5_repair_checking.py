"""Figure 5, column "Repair Check" — experiment id F5.check.

Paper claims (data complexity):

=========  ==================
family     repair checking
=========  ==================
Rep        PTIME
L-Rep      PTIME
S-Rep      PTIME
C-Rep      PTIME
G-Rep      co-NP-complete
=========  ==================

We benchmark each family's checker on conflict chains of growing
length.  The PTIME rows are run on chains up to 96 tuples; the G row
uses an exact exponential witness search, so it is benchmarked on small
chains — compare its blow-up against the flat growth of the others.
Assertions pin the *answers* so the timings measure real work.
"""

import sys

if not __package__:
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import pytest

from benchmarks._cli import run_pytest_module, sizes

from repro.core.families import Family, is_preferred_repair
from repro.repairs.checking import is_repair_on_graph

from benchmarks.workloads import chain_workload, sample_candidate

PTIME_SIZES = sizes(full=[24, 48, 96], smoke=[12])
GLOBAL_SIZES = sizes(full=[10, 14, 18], smoke=[8])


@pytest.mark.parametrize("length", PTIME_SIZES)
def test_rep_checking(benchmark, length):
    _, graph, priority = chain_workload(length)
    candidate = sample_candidate(graph)
    result = benchmark(is_repair_on_graph, candidate, graph)
    assert result is True


@pytest.mark.parametrize("length", PTIME_SIZES)
@pytest.mark.parametrize(
    "family", [Family.LOCAL, Family.SEMI_GLOBAL, Family.COMMON], ids=str
)
def test_ptime_family_checking(benchmark, family, length):
    _, graph, priority = chain_workload(length)
    candidate = sample_candidate(graph)
    result = benchmark(is_preferred_repair, family, candidate, priority)
    assert result in (True, False)


@pytest.mark.parametrize("length", GLOBAL_SIZES)
def test_global_checking_exponential(benchmark, length):
    _, graph, priority = chain_workload(length)
    candidate = sample_candidate(graph)
    result = benchmark(is_preferred_repair, Family.GLOBAL, candidate, priority)
    assert result in (True, False)


if __name__ == "__main__":
    sys.exit(run_pytest_module(__file__, __doc__))
