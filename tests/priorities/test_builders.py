"""Unit tests for priority builders (timestamps, reliability, ranking)."""

import random

import pytest
from hypothesis import given, settings

from repro.constraints.conflict_graph import build_conflict_graph
from repro.datagen.generators import GRID_FDS
from repro.datagen.paper_instances import mgr_scenario, mgr_source_of
from repro.exceptions import CyclicPriorityError, PriorityError
from repro.priorities.builders import (
    priority_from_pairs,
    priority_from_ranking,
    priority_from_relation,
    priority_from_source_reliability,
    priority_from_timestamps,
    random_priority,
)
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema
from tests.conftest import key_instances

KV = RelationSchema("R", ["A:number", "B:number"])


def key_group(*b_values):
    instance = RelationInstance.from_values(KV, [(1, b) for b in b_values])
    return build_conflict_graph(instance, GRID_FDS), [
        Row(KV, (1, b)) for b in b_values
    ]


class TestRanking:
    def test_higher_rank_wins(self):
        graph, (t1, t2) = key_group(1, 2)[0], key_group(1, 2)[1]
        priority = priority_from_ranking(graph, lambda row: row["B"])
        assert priority.dominates(t2, t1)

    def test_lower_wins_when_requested(self):
        graph, rows = key_group(1, 2)
        t1, t2 = rows
        priority = priority_from_ranking(
            graph, lambda row: row["B"], higher_wins=False
        )
        assert priority.dominates(t1, t2)

    def test_ties_stay_unoriented(self):
        graph, rows = key_group(1, 2)
        priority = priority_from_ranking(graph, lambda row: 0)
        assert priority.is_empty

    def test_timestamps(self):
        graph, rows = key_group(1, 2)
        t1, t2 = rows
        priority = priority_from_timestamps(graph, {t1: 100.0, t2: 50.0})
        assert priority.dominates(t1, t2)

    def test_timestamps_must_cover_all_tuples(self):
        graph, rows = key_group(1, 2)
        with pytest.raises(PriorityError):
            priority_from_timestamps(graph, {rows[0]: 1.0})


class TestSourceReliability:
    def test_example3_orientation(self):
        scenario = mgr_scenario()
        priority = priority_from_source_reliability(
            scenario.graph, mgr_source_of(), [("s1", "s3"), ("s2", "s3")]
        )
        assert priority.dominates(scenario.rows["mary_rd"], scenario.rows["mary_it"])
        assert priority.dominates(scenario.rows["john_rd"], scenario.rows["john_pr"])
        # s1 vs s2 is left open.
        assert not priority.dominates(
            scenario.rows["mary_rd"], scenario.rows["john_rd"]
        )
        assert not priority.dominates(
            scenario.rows["john_rd"], scenario.rows["mary_rd"]
        )

    def test_transitive_reliability(self):
        graph, rows = key_group(1, 2)
        t1, t2 = rows
        priority = priority_from_source_reliability(
            graph, {t1: "a", t2: "c"}, [("a", "b"), ("b", "c")]
        )
        assert priority.dominates(t1, t2)

    def test_cyclic_reliability_rejected(self):
        graph, rows = key_group(1, 2)
        t1, t2 = rows
        with pytest.raises(CyclicPriorityError):
            priority_from_source_reliability(
                graph, {t1: "a", t2: "b"}, [("a", "b"), ("b", "a")]
            )


class TestRelationAndPairs:
    def test_relation_filtered_to_conflicts(self):
        instance = RelationInstance.from_values(KV, [(1, 1), (1, 2), (2, 5)])
        graph = build_conflict_graph(instance, GRID_FDS)
        t1, t2, t3 = Row(KV, (1, 1)), Row(KV, (1, 2)), Row(KV, (2, 5))
        # (t1, t3) is not a conflict; it is silently dropped.
        priority = priority_from_relation(graph, [(t1, t2), (t1, t3)])
        assert priority.edges == {(t1, t2)}

    def test_relation_must_be_acyclic_globally(self):
        instance = RelationInstance.from_values(KV, [(1, 1), (1, 2), (2, 5)])
        graph = build_conflict_graph(instance, GRID_FDS)
        t1, t2, t3 = Row(KV, (1, 1)), Row(KV, (1, 2)), Row(KV, (2, 5))
        with pytest.raises(CyclicPriorityError):
            priority_from_relation(graph, [(t1, t3), (t3, t1)])

    def test_pairs_builder_validates(self):
        graph, rows = key_group(1, 2)
        priority = priority_from_pairs(graph, [(rows[0], rows[1])])
        assert priority.dominates(rows[0], rows[1])


class TestRandomPriority:
    @given(key_instances())
    @settings(max_examples=40, deadline=None)
    def test_random_priority_valid_and_dense(self, instance):
        graph = build_conflict_graph(instance, GRID_FDS)
        priority = random_priority(graph, density=1.0, rng=random.Random(5))
        assert priority.is_total

    def test_density_zero_gives_empty(self):
        graph, _ = key_group(1, 2, 3)
        priority = random_priority(graph, density=0.0, rng=random.Random(1))
        assert priority.is_empty

    def test_bad_density_rejected(self):
        graph, _ = key_group(1, 2)
        with pytest.raises(PriorityError):
            random_priority(graph, density=2.0)
