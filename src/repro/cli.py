"""Command-line interface.

Subcommands::

    repro conflicts  --csv data.csv --fd "A -> B" [--fd ...]
    repro repairs    --csv data.csv --fd "A -> B" [--limit N]
    repro clean      --csv data.csv --fd "A -> B" --prefer-new Timestamp
    repro cqa        --csv data.csv --fd "A -> B" --family G
                     --query "EXISTS x . R(x, 1)"
    repro query      --sqlite db.sqlite --fd "R: A -> B" --backend sqlite
                     --query "EXISTS y . R(x, y)"
    repro query      --sqlite db.sqlite --relation R --fd "A -> B"
                     --backend prefsql --prefer-new TS [--explain]
                     --query "EXISTS y . R(x, y)"
    repro examples   [--name mgr]

Data can come from CSV (``--csv``, relation named after the file stem
unless ``--relation`` is given) or from a SQLite database
(``--sqlite db.sqlite --relation R``).  Priorities are supplied either
with ``--prefer-new COLUMN`` (newer/larger value wins conflicts) or
``--prefer-source COLUMN --source-order "s1>s3,s2>s3"``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.constraints.conflict_graph import build_conflict_graph, render_conflict_graph
from repro.constraints.fd import FunctionalDependency
from repro.core.cleaning import clean
from repro.core.families import Family, preferred_repairs
from repro.cqa.engine import CqaEngine
from repro.priorities.builders import (
    priority_from_ranking,
    priority_from_source_reliability,
)
from repro.priorities.priority import Priority, empty_priority
from repro.relational.csv_io import read_instance_csv
from repro.relational.instance import RelationInstance
from repro.relational.rows import sorted_rows
from repro.relational.sqlite_io import load_database, load_instance

_FAMILY_CODES = {
    "Rep": Family.REP,
    "L": Family.LOCAL,
    "S": Family.SEMI_GLOBAL,
    "G": Family.GLOBAL,
    "C": Family.COMMON,
}


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--csv", help="CSV file holding the relation instance")
    parser.add_argument("--sqlite", help="SQLite database file")
    parser.add_argument("--relation", help="relation name (SQLite, or CSV override)")
    parser.add_argument(
        "--fd",
        action="append",
        default=[],
        metavar="SPEC",
        help='functional dependency, e.g. "Name -> Dept, Salary" (repeatable)',
    )
    parser.add_argument(
        "--prefer-new",
        metavar="COLUMN",
        help="orient conflicts toward larger values of COLUMN (timestamp style)",
    )
    parser.add_argument(
        "--prefer-source",
        metavar="COLUMN",
        help="column holding the source label of each tuple",
    )
    parser.add_argument(
        "--source-order",
        metavar="ORDER",
        help='reliability order like "s1>s3,s2>s3" (with --prefer-source)',
    )


def _load_instance(args: argparse.Namespace) -> RelationInstance:
    if args.csv:
        return read_instance_csv(args.csv, args.relation)
    if args.sqlite:
        if not args.relation:
            raise SystemExit("--sqlite requires --relation")
        return load_instance(args.sqlite, args.relation)
    raise SystemExit("provide --csv or --sqlite")


def _build_setting(args: argparse.Namespace):
    instance = _load_instance(args)
    dependencies = [
        FunctionalDependency.parse(spec, instance.schema.name) for spec in args.fd
    ]
    if not dependencies:
        raise SystemExit("at least one --fd is required")
    graph = build_conflict_graph(instance, dependencies)
    priority = empty_priority(graph)
    if args.prefer_new:
        column = args.prefer_new
        priority = priority_from_ranking(graph, lambda row: row[column])
    elif args.prefer_source:
        column = args.prefer_source
        priority = priority_from_source_reliability(
            graph,
            {row: row[column] for row in graph.vertices},
            _parse_source_order(args),
        )
    return instance, dependencies, graph, priority


def _parse_source_order(args: argparse.Namespace):
    """``"s1>s3,s2>s3"`` → [(better, worse), ...]."""
    if not args.source_order:
        raise SystemExit("--prefer-source requires --source-order")
    pairs = []
    for chunk in args.source_order.split(","):
        better, _, worse = chunk.partition(">")
        if not worse:
            raise SystemExit(f"bad --source-order chunk {chunk!r}")
        pairs.append((better.strip(), worse.strip()))
    return pairs


def _session_orientation_rule(args: argparse.Namespace):
    """The CLI priority flags as a rule applicable to *new* conflicts.

    ``_build_setting`` orients only the conflicts of the loaded
    instance; a session keeps creating conflicts via ``+`` lines, so
    the same preference must be re-applied to every delta edge or the
    session would silently diverge from ``repro cqa`` on the final
    instance.  Returns ``None`` when no preference flags are given.
    """
    if args.prefer_new:
        column = args.prefer_new

        def orient(first, second):
            rank_first, rank_second = first[column], second[column]
            if rank_first == rank_second:
                return None
            return (
                (first, second) if rank_first > rank_second else (second, first)
            )

        return orient
    if args.prefer_source:
        from repro.priorities.builders import _transitive_closure

        closure = _transitive_closure(_parse_source_order(args))
        column = args.prefer_source

        def orient(first, second):
            src_first, src_second = first[column], second[column]
            if (src_first, src_second) in closure:
                return first, second
            if (src_second, src_first) in closure:
                return second, first
            return None

        return orient
    return None


def _cmd_conflicts(args: argparse.Namespace) -> int:
    _, _, graph, priority = _build_setting(args)
    print(
        f"{graph.vertex_count} tuples, {graph.edge_count} conflicts, "
        f"{len(priority.edges)} oriented"
    )
    print(render_conflict_graph(graph, orientation=priority.edges))
    return 0


def _cmd_repairs(args: argparse.Namespace) -> int:
    _, _, graph, priority = _build_setting(args)
    family = _FAMILY_CODES[args.family]
    repairs = preferred_repairs(family, priority)
    shown = repairs[: args.limit] if args.limit else repairs
    print(f"{family}: {len(repairs)} repair(s)")
    for index, repair in enumerate(shown):
        rows = ", ".join(repr(row) for row in sorted_rows(repair))
        print(f"  [{index}] {{{rows}}}")
    if args.limit and len(repairs) > args.limit:
        print(f"  ... {len(repairs) - args.limit} more")
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    _, _, graph, priority = _build_setting(args)
    result = clean(priority)
    if not priority.is_total:
        print(
            "note: priority is partial; Algorithm 1 output below is one of "
            "the common repairs (C-Rep)"
        )
    for row in sorted_rows(result):
        print(repr(row))
    return 0


def _cmd_cqa(args: argparse.Namespace) -> int:
    instance, dependencies, graph, priority = _build_setting(args)
    family = _FAMILY_CODES[args.family]
    engine = CqaEngine(instance, dependencies, priority, family)
    answer = engine.answer(args.query)
    print(f"family={family} verdict={answer.verdict.value}")
    print(
        f"repairs considered: {answer.repairs_considered}, "
        f"satisfying: {answer.satisfying}"
    )
    if answer.counterexample is not None:
        rows = ", ".join(repr(row) for row in sorted_rows(answer.counterexample))
        print(f"counterexample repair: {{{rows}}}")
    return 0 if answer.verdict.value != "undetermined" else 2


def _sorted_answers(tuples):
    """Deterministic listing order for answer tuples.

    Answer columns can mix names and naturals (e.g. active-domain
    variables), so plain ``sorted`` would raise on ``int < str``;
    this mirrors the mixed-domain ordering rows use.
    """

    def key(answer):
        return tuple(
            (0, f"{value:020d}") if isinstance(value, int) else (1, str(value))
            for value in answer
        )

    return sorted(tuples, key=key)


def _format_answer_tuples(tuples) -> str:
    return ", ".join(str(tuple(answer)) for answer in _sorted_answers(tuples)) or "(none)"


def _open_answers_verdict(result) -> str:
    """Three-valued reading of a boolean query's OpenAnswers."""
    if result.certain:
        return "true"
    if result.possible:
        return "undetermined"
    return "false"


def _explain_decision(args: argparse.Namespace, engine, family) -> int:
    """Print the routing decision without executing (``--explain``)."""
    import json

    from repro.query.parser import parse_query
    from repro.query.sql import sql_to_formula

    if args.sql:
        formula, variables = sql_to_formula(args.sql, engine.schema)
    else:
        formula, variables = parse_query(args.query), None
    decision = engine.explain(formula, variables)
    route = decision.route or ("sqlite" if decision.pushed else "fallback")
    if args.json:
        payload = {
            "backend": args.backend,
            "family": str(family),
            "route": route if decision.pushed else "fallback",
            "reason": decision.reason,
            "plan": decision.plan.description if decision.pushed else None,
            "certain_sql": decision.plan.certain_sql if decision.pushed else None,
            "possible_sql": (
                decision.plan.possible_sql if decision.pushed else None
            ),
            "diagnostics": [d.to_dict() for d in decision.diagnostics],
        }
        print(json.dumps(payload))
        return 0
    if decision.pushed:
        print(f"route: {route} (pushed down, not executed)")
        print(f"plan: {decision.plan.description}")
        if decision.plan.certain_sql:
            print(f"certain SQL: {decision.plan.certain_sql}")
        if decision.plan.possible_sql:
            print(f"possible SQL: {decision.plan.possible_sql}")
    else:
        print("route: fallback (in-memory repair streaming)")
        print(f"reason: {decision.reason}")
    _print_diagnostics(decision.diagnostics)
    return 0


def _print_diagnostics(diagnostics) -> None:
    """Render analyzer diagnostics (codes, messages, hints) as text."""
    if not diagnostics:
        return
    print("diagnostics:")
    for diagnostic in diagnostics:
        print(f"  {diagnostic.render()}")
        print(f"    hint: {diagnostic.hint}")


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Static route analysis: no data is read beyond the schema load."""
    import json

    from repro.query.sql import sql_to_formula

    family = _FAMILY_CODES[args.family]
    has_priority_flags = bool(args.prefer_new or args.prefer_source)
    if has_priority_flags:
        instance, dependencies, _, priority = _build_setting(args)
        engine = CqaEngine(instance, dependencies, priority, family)
    else:
        dependencies = [
            FunctionalDependency.parse(spec, args.relation) for spec in args.fd
        ]
        if args.csv:
            data = read_instance_csv(args.csv, args.relation)
        elif args.sqlite:
            data = (
                load_instance(args.sqlite, args.relation)
                if args.relation
                else load_database(args.sqlite)
            )
        else:
            raise SystemExit("provide --csv or --sqlite")
        engine = CqaEngine(data, dependencies, None, family)

    if args.sql:
        formula, variables = sql_to_formula(args.sql, engine.database_schema)
    else:
        formula, variables = args.query, None
    report = engine.route_report(formula, variables)

    if args.json:
        payload = report.to_dict()
        payload["expected_last_routes"] = {
            engine_name: report.expected_last_route(engine_name)
            for engine_name in report.routes
        }
        print(json.dumps(payload))
        return 0 if not report.errors else 3

    print(f"query: {report.query}")
    print(f"fingerprint: {report.fingerprint}")
    print(f"plan: {report.plan_kind or '(blocked: repair streaming)'}")
    if report.relations:
        mentioned = ", ".join(report.relations)
        print(f"relations: {mentioned}")
    if report.prioritized:
        print(f"prioritized: {', '.join(report.prioritized)}")
    print("routes:")
    for engine_name in ("memory", "sqlite", "prefsql"):
        label = report.routes[engine_name]
        if report.blocked(engine_name):
            blocker = report.blocking(engine_name)[0]
            print(
                f"  {engine_name}: fallback "
                f"(blocked by {blocker.full_code})"
            )
        else:
            print(f"  {engine_name}: {label}")
    _print_diagnostics(report.diagnostics)
    # Exit status mirrors `cqa`'s convention: 0 = fully pushable
    # somewhere, 3 = at least one engine is statically blocked.
    return 0 if not report.errors else 3


def _cmd_query(args: argparse.Namespace) -> int:
    """Certain answers for open or closed queries, optionally SQL-pushed."""
    import json

    family = _FAMILY_CODES[args.family]
    dependencies = [
        FunctionalDependency.parse(spec, args.relation) for spec in args.fd
    ]
    has_priority_flags = bool(args.prefer_new or args.prefer_source)

    if args.backend == "sqlite":
        from repro.backend import SqlCqaEngine

        if not args.sqlite:
            raise SystemExit("--backend sqlite requires --sqlite")
        if has_priority_flags:
            raise SystemExit(
                "--prefer-* flags are preference-aware; use --backend prefsql "
                "(pushed) or --backend memory (repair streaming)"
            )
        engine = SqlCqaEngine(args.sqlite, dependencies, family=family)

        def route() -> str:
            last = engine.last_route or "sqlite"
            return "sqlite (pushed down)" if last == "sqlite" else last
    elif args.backend == "prefsql":
        import sqlite3 as _sqlite3

        from repro.prefsql import PrefSqlCqaEngine
        from repro.relational.database import Database
        from repro.relational.sqlite_io import save_database

        if has_priority_flags:
            # The priority builders orient the loaded instance's
            # conflicts; the engine then pushes that orientation down.
            instance, dependencies, _, priority = _build_setting(args)
            edges = priority.dominance_rows()
        else:
            instance, edges = None, ()
        if args.sqlite:
            engine = PrefSqlCqaEngine(
                args.sqlite, dependencies, edges, family
            )
        elif instance is not None or args.csv:
            if instance is None:
                instance = read_instance_csv(args.csv, args.relation)
            connection = _sqlite3.connect(":memory:")
            save_database(Database.single(instance), connection, dependencies)
            engine = PrefSqlCqaEngine(connection, dependencies, edges, family)
        else:
            raise SystemExit("provide --csv or --sqlite")

        def route() -> str:
            last = engine.last_route or "prefsql"
            return f"{last} (pushed down)" if last in ("prefsql", "sqlite") else last
    elif has_priority_flags:
        instance, dependencies, _, priority = _build_setting(args)
        engine = CqaEngine(instance, dependencies, priority, family)

        def route() -> str:
            return "memory"
    else:
        if args.csv:
            data = read_instance_csv(args.csv, args.relation)
        elif args.sqlite:
            data = (
                load_instance(args.sqlite, args.relation)
                if args.relation
                else load_database(args.sqlite)
            )
        else:
            raise SystemExit("provide --csv or --sqlite")
        engine = CqaEngine(data, dependencies, None, family)

        def route() -> str:
            return "memory"

    if getattr(args, "explain", False):
        if hasattr(engine, "explain"):
            return _explain_decision(args, engine, family)
        if args.json:
            print(
                json.dumps(
                    {
                        "backend": "memory",
                        "family": str(family),
                        "route": "memory",
                        "reason": "in-memory repair streaming (no SQL)",
                    }
                )
            )
        else:
            print("route: memory (in-memory repair streaming, no SQL)")
        return 0

    if not getattr(args, "profile", False):
        code, payload = _execute_query(args, engine, route, family)
        if payload is not None:
            print(json.dumps(payload))
        return code

    # --profile: collect the query-lifecycle span tree while executing,
    # then render it after the normal output.  Under --json the tree is
    # embedded as the payload's "trace" key (stdout stays one JSON
    # object) and pretty-printed to stderr for humans.
    from repro.obs import format_tree, trace

    with trace("query") as tracer:
        code, payload = _execute_query(args, engine, route, family)
    tracer.root.attributes.setdefault("backend", args.backend)
    tracer.root.attributes.setdefault("route", route())
    if payload is not None:
        payload["trace"] = tracer.root.to_dict()
        print(json.dumps(payload))
    stream = sys.stderr if args.json else sys.stdout
    print(format_tree(tracer.root), file=stream)
    return code


def _execute_query(args: argparse.Namespace, engine, route, family):
    """Execute the (already routed) query and print/return the answer.

    Returns ``(exit_code, payload)`` — ``payload`` is the JSON body
    under ``--json`` (printed by the caller, which may first attach a
    span tree) and None in text mode (already printed here).
    """
    from repro.query.parser import parse_query

    if args.sql:
        result = engine.sql_certain_answers(args.sql, family)
    else:
        formula = parse_query(args.query)
        if formula.is_closed:
            answer = engine.answer(formula, family)
            code = 0 if answer.verdict.value != "undetermined" else 2
            if args.json:
                return code, {
                    "backend": route(),
                    "family": str(family),
                    "verdict": answer.verdict.value,
                }
            print(f"backend: {route()}")
            print(f"family={family} verdict={answer.verdict.value}")
            return code, None
        result = engine.certain_answers(formula, family=family)

    if args.json:
        return 0, {
            "backend": route(),
            "family": str(family),
            "variables": list(result.variables),
            "certain": list(map(list, _sorted_answers(result.certain))),
            "possible": list(map(list, _sorted_answers(result.possible))),
        }
    print(f"backend: {route()}")
    if not result.variables:
        print(f"family={family} verdict={_open_answers_verdict(result)}")
        return (0 if _open_answers_verdict(result) != "undetermined" else 2), None
    print(f"variables: {', '.join(result.variables)}")
    print(f"certain: {_format_answer_tuples(result.certain)}")
    print(f"possible: {_format_answer_tuples(result.possible)}")
    return 0, None


def _cmd_aggregate(args: argparse.Namespace) -> int:
    from fractions import Fraction

    from repro.cqa.aggregation import (
        Aggregate,
        key_range_consistent_answer,
        range_consistent_answer,
    )

    _, _, graph, priority = _build_setting(args)
    aggregate = Aggregate[args.agg.upper().replace("(*)", "_STAR")]
    if aggregate.needs_attribute and not args.attribute:
        raise SystemExit(f"{aggregate.value} requires --attribute")
    family = _FAMILY_CODES[args.family]
    if args.closed_form:
        result = key_range_consistent_answer(graph, aggregate, args.attribute)
    else:
        result = range_consistent_answer(
            priority, aggregate, args.attribute, family
        )

    def fmt(value):
        return f"{float(value):.3f}" if isinstance(value, Fraction) else str(value)

    label = aggregate.value + (f"({args.attribute})" if args.attribute else "")
    kind = "exact" if result.is_exact else "range"
    print(f"{label} over {family}: [{fmt(result.lower)}, {fmt(result.upper)}] ({kind})")
    return 0


def _parse_session_values(schema, payload: str):
    """Parse ``v1, v2, ...`` against the relation schema's types.

    Raises a :class:`~repro.exceptions.ReproError` subclass so the
    session loop can report the offending script line.
    """
    from repro.exceptions import UpdateError

    fields = [field.strip() for field in payload.split(",")]
    if len(fields) != len(schema.attributes):
        raise UpdateError(
            f"expected {len(schema.attributes)} values for {schema.name}, "
            f"got {len(fields)}: {payload!r}"
        )
    return [
        attribute.type.parse(field)
        for attribute, field in zip(schema.attributes, fields)
    ]


def _cmd_session(args: argparse.Namespace) -> int:
    """Run a ``+``/``-``/``?`` update-and-query script incrementally."""
    import json

    from repro.exceptions import ReproError
    from repro.incremental import IncrementalCqaEngine
    from repro.relational.rows import Row

    instance, dependencies, graph, priority = _build_setting(args)
    family = _FAMILY_CODES[args.family]
    engine = IncrementalCqaEngine(instance, dependencies, priority.edges, family)
    orient = _session_orientation_rule(args)
    schema = instance.schema
    mirror = None
    if getattr(args, "backend", "memory") == "sqlite":
        from repro.backend import SqliteMirror

        mirror = SqliteMirror(dependencies, family)
    if args.script and args.script != "-":
        with open(args.script, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = sys.stdin.readlines()
    events = []
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        op, payload = line[0], line[1:].strip()
        try:
            if op == "+":
                values = _parse_session_values(schema, payload)
                if mirror is not None:
                    mirror.mark_dirty()
                delta = engine.insert(Row(schema, values))
                if orient is not None:
                    # Extend the declared priority to the new conflicts,
                    # mirroring what --prefer-* did for the initial load.
                    for pair in delta.added_edges:
                        oriented = orient(*tuple(pair))
                        if oriented is not None:
                            engine.prefer(*oriented)
                events.append(
                    {
                        "op": "insert",
                        "line": number,
                        "values": values,
                        "applied": not delta.is_noop,
                        "new_conflicts": len(delta.added_edges),
                        "tuples": engine.graph.vertex_count,
                        "conflicts": engine.graph.edge_count,
                    }
                )
            elif op == "-":
                values = _parse_session_values(schema, payload)
                if mirror is not None:
                    mirror.mark_dirty()
                delta = engine.delete(Row(schema, values))
                events.append(
                    {
                        "op": "delete",
                        "line": number,
                        "values": values,
                        "applied": True,
                        "removed_conflicts": len(delta.removed_edges),
                        "tuples": engine.graph.vertex_count,
                        "conflicts": engine.graph.edge_count,
                    }
                )
            elif op == "?":
                from repro.query.parser import parse_query

                formula = parse_query(payload)
                # Route rewritable queries through the SQLite mirror;
                # declared priorities or non-rewritable shapes stay on
                # the incremental engine (which reuses its caches).
                target = engine
                backend_used = "memory"
                if mirror is not None and not engine.active_priority_edges():
                    sql_engine = mirror.engine_for(engine.current_database())
                    if sql_engine.explain(formula).pushed:
                        target = sql_engine
                        backend_used = "sqlite"
                if formula.is_closed:
                    answer = target.answer(formula)
                    events.append(
                        {
                            "op": "query",
                            "line": number,
                            "query": payload,
                            "family": str(family),
                            "backend": backend_used,
                            "verdict": answer.verdict.value,
                            "repairs_considered": answer.repairs_considered,
                            "satisfying": answer.satisfying,
                        }
                    )
                else:
                    result = target.certain_answers(formula)
                    events.append(
                        {
                            "op": "query",
                            "line": number,
                            "query": payload,
                            "family": str(family),
                            "backend": backend_used,
                            "variables": list(result.variables),
                            "certain": list(
                                map(list, _sorted_answers(result.certain))
                            ),
                            "possible": list(
                                map(list, _sorted_answers(result.possible))
                            ),
                            "repairs_considered": result.repairs_considered,
                        }
                    )
            else:
                raise SystemExit(
                    f"line {number}: expected '+', '-' or '?', got {line!r}"
                )
        except ReproError as exc:
            raise SystemExit(f"line {number}: {exc}")
    if args.json:
        print(json.dumps({"events": events, "summary": engine.summary()}, default=str))
    else:
        for event in events:
            if event["op"] == "insert":
                print(
                    f"+ {event['values']} -> {event['new_conflicts']} new conflict(s), "
                    f"{event['tuples']} tuples"
                )
            elif event["op"] == "delete":
                print(
                    f"- {event['values']} -> {event['removed_conflicts']} conflict(s) removed, "
                    f"{event['tuples']} tuples"
                )
            elif "verdict" in event:
                detail = (
                    "pushed to sqlite"
                    if event.get("backend") == "sqlite"
                    else f"{event['satisfying']}/{event['repairs_considered']} repairs"
                )
                print(
                    f"? {event['query']} [{event['family']}] = {event['verdict']} "
                    f"({detail})"
                )
            else:
                certain = ", ".join(str(tuple(a)) for a in event["certain"]) or "(none)"
                suffix = (
                    " (via sqlite)" if event.get("backend") == "sqlite" else ""
                )
                print(
                    f"? {event['query']} [{event['family']}] certain: {certain}"
                    f"{suffix}"
                )
        summary = engine.summary()
        print(
            f"session end: {summary['tuples']} tuples, {summary['conflicts']} conflicts, "
            f"{summary['updates_applied']} updates applied"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the batched CQA service over one loaded instance."""
    from repro.obs import RECORDER
    from repro.service.broker import RequestBroker
    from repro.service.server import (
        ServiceFrontEnd,
        make_http_server,
        serve_stdio,
    )

    instance, dependencies, _, priority = _build_setting(args)
    family = _FAMILY_CODES[args.family]
    backend = getattr(args, "backend", "auto")
    if args.no_pushdown and backend in ("sqlite", "prefsql"):
        raise SystemExit(
            f"--no-pushdown disables the mirror that --backend {backend} "
            "requires; drop one of the two flags"
        )
    if args.trace_sample is not None:
        if not 0.0 <= args.trace_sample <= 1.0:
            raise SystemExit("--trace-sample must be in [0, 1]")
        RECORDER.configure(sample_rate=args.trace_sample)
    if args.slow_ms is not None:
        if args.slow_ms < 0:
            raise SystemExit("--slow-ms must be >= 0")
        RECORDER.configure(slow_ms=args.slow_ms)
    if args.max_inflight is not None and args.max_inflight < 1:
        raise SystemExit("--max-inflight must be >= 1")
    broker = RequestBroker(
        parallel=args.parallel,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
    )
    broker.register(
        args.name,
        instance,
        dependencies,
        priority.edges,
        family,
        sqlite_pushdown=not args.no_pushdown and backend != "memory",
        prefsql_pushdown=backend in ("auto", "prefsql"),
    )
    access_stream = None
    owns_stream = False
    if getattr(args, "access_log", None):
        if args.access_log == "-":
            access_stream = sys.stderr
        else:
            access_stream = open(args.access_log, "a", encoding="utf-8")
            owns_stream = True
    front = ServiceFrontEnd(broker, access_log=access_stream)
    try:
        if args.stdio:
            return serve_stdio(front, sys.stdin, sys.stdout)
        server = make_http_server(front, args.host, args.port)
        host, port = server.server_address[:2]
        print(f"repro service on http://{host}:{port} "
              f"(POST /query, POST /update, GET /healthz, GET /stats, "
              f"GET /metrics, GET /debug/queries)")
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            server.server_close()
            broker.close()
        return 0
    finally:
        if owns_stream:
            access_stream.close()


def _debug_fetch(url: str):
    """GET a debug endpoint of a running service; SystemExit on failure."""
    import json
    from urllib.error import HTTPError, URLError
    from urllib.request import urlopen

    try:
        with urlopen(url) as response:
            return json.load(response)
    except HTTPError as exc:
        try:
            detail = json.load(exc).get("error", str(exc))
        except Exception:
            detail = str(exc)
        raise SystemExit(f"{url}: {detail}")
    except URLError as exc:
        raise SystemExit(
            f"cannot reach {url}: {exc.reason} (is `repro serve` running?)"
        )


def _render_top(args: argparse.Namespace) -> None:
    """One fetch-and-print round of the `repro top` table."""
    import json
    from urllib.parse import urlencode

    params = {"limit": args.limit}
    if args.route:
        params["route"] = args.route
    if args.min_ms is not None:
        params["min_ms"] = args.min_ms
    if args.slowest:
        params["order"] = "slowest"
    body = _debug_fetch(
        f"{args.url.rstrip('/')}/debug/queries?{urlencode(params)}"
    )
    if args.json:
        print(json.dumps(body))
        return
    queries = body.get("queries", [])
    if not queries:
        print("no recorded queries (is sampling enabled on the server?)")
        return
    print(
        f"{'TRACE':<18} {'ROUTE':<14} {'ENGINE':<12} {'FAM':<4} "
        f"{'MS':>10} {'SLOW':<4} QUERY"
    )
    for query in queries:
        print(
            f"{query['trace_id']:<18} {query['route']:<14} "
            f"{query['engine']:<12} {query['family']:<4} "
            f"{query['millis']:>10.3f} {'*' if query['slow'] else '':<4} "
            f"{query['query']}"
        )


def _cmd_top(args: argparse.Namespace) -> int:
    """Table of recent/slowest recorded queries from a running service."""
    import time as _time
    from datetime import datetime, timezone

    if args.watch is None:
        _render_top(args)
        return 0
    if args.watch <= 0:
        raise SystemExit("--watch needs a positive refresh interval")
    rounds = 0
    try:
        while True:
            if not args.json:
                stamp = datetime.now(timezone.utc).strftime("%H:%M:%S")
                print(f"--- repro top @ {stamp}Z "
                      f"(refresh {args.watch:g}s, ctrl-c to stop) ---")
            _render_top(args)
            rounds += 1
            if args.iterations is not None and rounds >= args.iterations:
                break
            _time.sleep(args.watch)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """One recorded query's span tree, fetched from a running service."""
    import json

    from repro.obs import Span, format_tree

    trace_id = args.trace_id
    if trace_id in ("latest", "slowest"):
        # Shorthands: resolve through the listing endpoint so tail
        # attribution during a sweep needs no copied trace ids.
        suffix = "&order=slowest" if trace_id == "slowest" else ""
        listing = _debug_fetch(
            f"{args.url.rstrip('/')}/debug/queries?limit=1{suffix}"
        )
        queries = listing.get("queries", [])
        if not queries:
            raise SystemExit(
                "no recorded queries (is sampling enabled on the server?)"
            )
        trace_id = queries[0]["trace_id"]
    body = _debug_fetch(
        f"{args.url.rstrip('/')}/debug/queries/{trace_id}"
    )
    if args.json:
        print(json.dumps(body))
        return 0
    print(f"trace {body['trace_id']}: {body['query']}")
    print(
        f"engine={body['engine']} route={body['route']} "
        f"family={body['family']} latency_ms={body['millis']:.3f} "
        f"db={body.get('database') or '-'}"
    )
    if body.get("fingerprint"):
        print(f"fingerprint: {body['fingerprint']}")
    if body.get("blocking"):
        print(f"blocking: {', '.join(body['blocking'])}")
    if body.get("trace"):
        print(format_tree(Span.from_dict(body["trace"])))
    else:
        print("(no span tree retained for this record)")
    return 0


def _parse_churn_spec(spec: str):
    """``"W:1,2"`` → a churn WorkloadEntry over relation W."""
    from repro.obs.workload import WorkloadEntry, WorkloadError

    relation, _, raw = spec.partition(":")
    if not relation or not raw:
        raise SystemExit(
            f"bad --churn spec {spec!r} (expected RELATION:v1,v2,...)"
        )
    values = []
    for chunk in raw.split(","):
        chunk = chunk.strip()
        try:
            values.append(int(chunk))
        except ValueError:
            values.append(chunk)
    try:
        return WorkloadEntry(kind="churn", relation=relation, values=tuple(values))
    except WorkloadError as exc:
        raise SystemExit(f"bad --churn spec {spec!r}: {exc}")


def _cmd_workload(args: argparse.Namespace) -> int:
    """Export recorded traffic to a workload file, or inspect one."""
    import json

    from repro.obs import workload as wl

    if args.action == "show":
        try:
            loaded = wl.load(args.file)
        except (OSError, wl.WorkloadError) as exc:
            raise SystemExit(f"{args.file}: {exc}")
        if args.json:
            print(json.dumps({
                "header": loaded.header(),
                "entries": [entry.to_dict() for entry in loaded.entries],
            }))
            return 0
        read_weight = sum(entry.weight for entry in loaded.reads)
        write_weight = sum(entry.weight for entry in loaded.writes)
        total = read_weight + write_weight
        print(f"workload {loaded.name!r}: {len(loaded.entries)} entries "
              f"({len(loaded.reads)} query, {len(loaded.writes)} churn), "
              f"mix {read_weight}/{total} read")
        if loaded.source:
            print(f"source: {loaded.source}")
        print(f"{'KIND':<6} {'WEIGHT':>6} {'FAM':<4} DETAIL")
        for entry in loaded.entries:
            if entry.is_read:
                detail = entry.query
            else:
                detail = (f"{entry.relation}{list(entry.values or ())} "
                          f"(unique col {entry.unique_column})")
            print(f"{entry.kind:<6} {entry.weight:>6} "
                  f"{entry.family or '-':<4} {detail}")
        return 0

    # export
    if args.url:
        from urllib.parse import urlencode

        payload = _debug_fetch(
            f"{args.url.rstrip('/')}/debug/queries?"
            f"{urlencode({'limit': args.limit})}"
        )
        source = args.url
    elif args.from_json:
        try:
            with open(args.from_json, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"{args.from_json}: {exc}")
        source = args.from_json
    else:
        raise SystemExit("workload export needs --url or --from-json")
    churn = [_parse_churn_spec(spec) for spec in args.churn]
    try:
        exported = wl.export_from_debug_payload(
            payload, name=args.name, source=source
        )
        if churn:
            exported = wl.Workload(
                wl.normalize_entries(exported.entries + tuple(churn)),
                name=exported.name,
                source=exported.source,
            )
    except wl.WorkloadError as exc:
        raise SystemExit(str(exc))
    if args.output:
        exported.save(args.output)
        print(f"wrote {len(exported.entries)} entries to {args.output}")
    else:
        sys.stdout.write(exported.dumps())
    return 0


def _churn_schemas(loaded):
    """Empty relation instances for a workload's churn relations, typed
    from the spec values (number vs text)."""
    from repro.relational.schema import RelationSchema

    instances = []
    for entry in loaded.writes:
        attributes = [
            f"c{index}:{'number' if isinstance(value, (int, float)) else 'text'}"
            for index, value in enumerate(entry.values or ())
        ]
        instances.append(
            RelationInstance(RelationSchema(entry.relation, attributes))
        )
    return instances


def _cmd_loadtest(args: argparse.Namespace) -> int:
    """Replay a workload file across a concurrency × mix sweep."""
    import json

    from repro.obs import RECORDER
    from repro.obs import workload as wl
    from repro.service.loadgen import (
        HttpTarget,
        InProcessTarget,
        LoadGenError,
        LoadGenerator,
    )

    try:
        loaded = wl.load(args.workload)
    except (OSError, wl.WorkloadError) as exc:
        raise SystemExit(f"{args.workload}: {exc}")
    try:
        concurrencies = [int(c) for c in args.concurrency.split(",")]
        write_fractions = [float(f) for f in args.write_fraction.split(",")]
    except ValueError as exc:
        raise SystemExit(f"bad sweep grid: {exc}")

    recorder = None
    broker = None
    if args.url:
        target = HttpTarget(args.url)
    else:
        from repro.relational.database import Database
        from repro.service.broker import RequestBroker
        from repro.service.server import ServiceFrontEnd

        instance, dependencies, _, priority = _build_setting(args)
        database = Database([instance] + _churn_schemas(loaded))
        broker = RequestBroker(parallel=args.parallel)
        broker.register(
            "default",
            database,
            dependencies,
            priority.edges,
            _FAMILY_CODES[args.family],
        )
        target = InProcessTarget(ServiceFrontEnd(broker))
        RECORDER.reset()
        RECORDER.configure(sample_rate=1.0)
        recorder = RECORDER

    generator = LoadGenerator(target, loaded, recorder=recorder)
    try:
        results = generator.sweep(
            concurrencies,
            write_fractions,
            requests=args.requests,
            mode=args.mode,
            rate=args.rate,
            seed=args.seed,
        )
    except LoadGenError as exc:
        raise SystemExit(str(exc))
    finally:
        if broker is not None:
            broker.close()
    if args.json:
        print(json.dumps({
            "workload": loaded.name,
            "cells": [result.to_dict() for result in results],
        }))
    else:
        print(f"{'CONC':>4} {'WRITES':>6} {'MODE':<6} {'DONE':>6} "
              f"{'REJ':>4} {'RPS':>10} {'P50MS':>8} {'P95MS':>8} "
              f"{'P99MS':>8} {'VERIFIED':<8}")
        for result in results:
            cell = result.to_dict()
            print(
                f"{cell['concurrency']:>4} {cell['write_fraction']:>6.2f} "
                f"{cell['mode']:<6} {cell['completed']:>6} "
                f"{cell['rejected']:>4} {cell['throughput_rps']:>10.1f} "
                f"{cell['p50_ms']:>8.3f} {cell['p95_ms']:>8.3f} "
                f"{cell['p99_ms']:>8.3f} "
                f"{'yes' if cell['verified'] else 'NO':<8}"
            )
        for result in results:
            for mismatch in result.mismatches[:3]:
                print(f"MISMATCH {mismatch.query}: expected "
                      f"{mismatch.expected} got {mismatch.actual}")
    return 0 if all(result.verified for result in results) else 1


def _cmd_examples(args: argparse.Namespace) -> int:
    from repro.core.families import family_chain
    from repro.datagen import paper_instances

    scenarios = {sc.name: sc for sc in paper_instances.all_scenarios()}
    chosen = [scenarios[args.name]] if args.name else scenarios.values()
    for scenario in chosen:
        names = {row: label for label, row in scenario.rows.items()}
        print(f"=== {scenario.name}: {scenario.graph.edge_count} conflicts ===")
        print(render_conflict_graph(scenario.graph, names, scenario.priority.edges))
        for family, repairs in family_chain(scenario.priority).items():
            rendered = [
                "{" + ", ".join(sorted(names.get(r, repr(r)) for r in repair)) + "}"
                for repair in repairs
            ]
            print(f"  {family}: {', '.join(rendered)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Preference-driven querying of inconsistent databases",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    conflicts = subparsers.add_parser("conflicts", help="show the conflict graph")
    _add_data_arguments(conflicts)
    conflicts.set_defaults(handler=_cmd_conflicts)

    repairs = subparsers.add_parser("repairs", help="list preferred repairs")
    _add_data_arguments(repairs)
    repairs.add_argument("--family", choices=_FAMILY_CODES, default="Rep")
    repairs.add_argument("--limit", type=int, default=20)
    repairs.set_defaults(handler=_cmd_repairs)

    clean_cmd = subparsers.add_parser("clean", help="run Algorithm 1")
    _add_data_arguments(clean_cmd)
    clean_cmd.set_defaults(handler=_cmd_clean)

    cqa = subparsers.add_parser("cqa", help="preferred consistent query answer")
    _add_data_arguments(cqa)
    cqa.add_argument("--family", choices=_FAMILY_CODES, default="Rep")
    cqa.add_argument("--query", required=True, help="closed first-order query")
    cqa.set_defaults(handler=_cmd_cqa)

    query_cmd = subparsers.add_parser(
        "query",
        help="certain answers, optionally pushed down into SQLite",
        description=(
            "Compute certain (and possible) answers of an open or closed "
            "query.  With --backend sqlite, safe conjunctive queries are "
            "compiled to a single self-join SQL rewriting and evaluated "
            "inside the SQLite file itself — no repair enumeration; "
            "non-rewritable queries transparently fall back to the "
            "in-memory engine."
        ),
    )
    _add_data_arguments(query_cmd)
    query_cmd.add_argument("--family", choices=_FAMILY_CODES, default="Rep")
    query_target = query_cmd.add_mutually_exclusive_group(required=True)
    query_target.add_argument("--query", help="first-order query (open or closed)")
    query_target.add_argument("--sql", help="conjunctive SELECT query")
    query_cmd.add_argument(
        "--backend",
        choices=["memory", "sqlite", "prefsql"],
        default="memory",
        help=(
            "evaluation backend (sqlite = push rewritable queries down; "
            "prefsql = preference-aware pushdown, accepts --prefer-* flags)"
        ),
    )
    query_cmd.add_argument(
        "--explain",
        action="store_true",
        help=(
            "print the routing decision (route, fallback reason, generated "
            "SQL when pushed) without executing the query"
        ),
    )
    query_cmd.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )
    query_cmd.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print the query-lifecycle span tree (per-stage timings and "
            "the chosen route) after the answer; with --json the tree "
            "goes to stderr"
        ),
    )
    query_cmd.set_defaults(handler=_cmd_query)

    analyze_cmd = subparsers.add_parser(
        "analyze",
        help="static route analysis: diagnostics without executing",
        description=(
            "Classify a query against the schema, FDs, and priority "
            "theory without executing it: which engine would push it "
            "down, which would fall back, and every blocking "
            "diagnostic (with fix hints).  Purely data-independent "
            "apart from the schema load."
        ),
    )
    _add_data_arguments(analyze_cmd)
    analyze_cmd.add_argument("--family", choices=_FAMILY_CODES, default="Rep")
    analyze_target = analyze_cmd.add_mutually_exclusive_group(required=True)
    analyze_target.add_argument(
        "--query", help="first-order query (open or closed)"
    )
    analyze_target.add_argument("--sql", help="conjunctive SELECT query")
    analyze_cmd.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    analyze_cmd.set_defaults(handler=_cmd_analyze)

    aggregate = subparsers.add_parser(
        "aggregate", help="range-consistent aggregate answer"
    )
    _add_data_arguments(aggregate)
    aggregate.add_argument(
        "--agg",
        required=True,
        choices=["count_star", "count", "min", "max", "sum", "avg"],
        help="aggregate function (count_star = COUNT(*))",
    )
    aggregate.add_argument("--attribute", help="attribute to aggregate")
    aggregate.add_argument("--family", choices=_FAMILY_CODES, default="Rep")
    aggregate.add_argument(
        "--closed-form",
        action="store_true",
        help="use the PTIME single-key closed form (classic Rep only)",
    )
    aggregate.set_defaults(handler=_cmd_aggregate)

    session = subparsers.add_parser(
        "session",
        help="incremental update-and-query session over one instance",
        description=(
            "Load an instance, then apply a script (file via --script, or "
            "stdin) of lines: '+ v1, v2, ...' inserts a tuple, "
            "'- v1, v2, ...' deletes one, '? QUERY' answers a first-order "
            "query (closed: verdict; open: certain answers).  One "
            "IncrementalCqaEngine serves the whole session, so repeated "
            "queries reuse per-component repair caches across updates."
        ),
    )
    _add_data_arguments(session)
    session.add_argument("--family", choices=_FAMILY_CODES, default="Rep")
    session.add_argument(
        "--script", help="script file ('-' or omitted reads stdin)"
    )
    session.add_argument(
        "--json", action="store_true", help="emit events + summary as JSON"
    )
    session.add_argument(
        "--backend",
        choices=["memory", "sqlite"],
        default="memory",
        help=(
            "query backend: sqlite keeps a lazily refreshed SQLite mirror "
            "and answers rewritable queries by SQL pushdown"
        ),
    )
    session.set_defaults(handler=_cmd_session)

    serve = subparsers.add_parser(
        "serve",
        help="run the batched CQA service (HTTP or JSON-lines stdio)",
        description=(
            "Load an instance and serve it through the request broker: "
            "batches are deduplicated, answers are memoized "
            "content-keyed, and each query runs on the cheapest capable "
            "engine (SQLite pushdown, witness index, or indexed "
            "in-memory streaming — optionally sharded across a process "
            "pool with --parallel).  Default transport is JSON over "
            "HTTP; --stdio reads one JSON request per line instead."
        ),
    )
    _add_data_arguments(serve)
    serve.add_argument("--family", choices=_FAMILY_CODES, default="Rep")
    serve.add_argument(
        "--name", default="default", help="name the database registers under"
    )
    serve.add_argument(
        "--stdio",
        action="store_true",
        help="serve JSON lines over stdin/stdout instead of HTTP",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080, help="HTTP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="shard repair enumeration across N workers (0 = all cores)",
    )
    serve.add_argument(
        "--no-pushdown",
        action="store_true",
        help="disable the SQLite mirror (always answer in memory)",
    )
    serve.add_argument(
        "--backend",
        choices=["auto", "memory", "sqlite", "prefsql"],
        default="auto",
        help=(
            "pushdown policy: auto/prefsql = preference-aware SQL for "
            "prioritized requests, sqlite = preference-blind mirror only "
            "(prioritized requests stream in memory), memory = no mirror"
        ),
    )
    serve.add_argument(
        "--access-log",
        nargs="?",
        const="-",
        metavar="PATH",
        help=(
            "write one line per served query (latency, route, answer "
            "cardinality, trace id) to PATH; with no PATH, log to stderr"
        ),
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help=(
            "admission control: serve at most N requests concurrently; "
            "excess waits in a bounded queue (see --max-queue) and "
            "overflow is rejected with HTTP 503 (default: unlimited)"
        ),
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help=(
            "accept-queue bound used with --max-inflight "
            "(default: equal to --max-inflight)"
        ),
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "flight-recorder sampling rate in [0, 1]: fraction of "
            "executed queries whose trace record is retained "
            "(default: 1.0, record everything)"
        ),
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="N",
        help=(
            "retain every query at or above N milliseconds "
            "unconditionally (slow-query reservoir), regardless of "
            "the sampling rate"
        ),
    )
    serve.set_defaults(handler=_cmd_serve)

    top = subparsers.add_parser(
        "top",
        help="recent/slowest recorded queries of a running service",
        description=(
            "Fetch the flight recorder's retained queries from a running "
            "`repro serve` instance (GET /debug/queries) and render them "
            "as a table: trace id, route, engine, family, latency.  Use "
            "`repro trace <id>` on any trace id for the full span tree."
        ),
    )
    top.add_argument(
        "--url", default="http://127.0.0.1:8080", help="service base URL"
    )
    top.add_argument("--route", help="only queries served by this route")
    top.add_argument(
        "--min-ms", type=float, default=None, metavar="N",
        help="only queries at or above N milliseconds",
    )
    top.add_argument(
        "--limit", type=int, default=20, help="maximum rows (default: 20)"
    )
    top.add_argument(
        "--slowest",
        action="store_true",
        help="order by descending latency instead of recency",
    )
    top.add_argument(
        "--json", action="store_true", help="emit the raw records as JSON"
    )
    top.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="refresh the table every SECONDS until interrupted",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="with --watch, stop after N refreshes (default: run forever)",
    )
    top.set_defaults(handler=_cmd_top)

    trace_cmd = subparsers.add_parser(
        "trace",
        help="span tree of one recorded query (by trace id)",
        description=(
            "Fetch one retained query record from a running `repro serve` "
            "instance (GET /debug/queries/<trace_id>) and pretty-print "
            "its span tree — per-stage timings including per-shard spans "
            "shipped home from parallel workers."
        ),
    )
    trace_cmd.add_argument(
        "trace_id",
        help=(
            "trace id (see `repro top`), or the shorthands 'latest' / "
            "'slowest' for the most recent / highest-latency record"
        ),
    )
    trace_cmd.add_argument(
        "--url", default="http://127.0.0.1:8080", help="service base URL"
    )
    trace_cmd.add_argument(
        "--json", action="store_true", help="emit the raw record as JSON"
    )
    trace_cmd.set_defaults(handler=_cmd_trace)

    workload_cmd = subparsers.add_parser(
        "workload",
        help="export recorded traffic to a replayable workload file",
        description=(
            "Turn the flight recorder's retained queries into a "
            "versioned JSON-lines workload file (`export`, from a "
            "running service's /debug/queries or a saved copy of that "
            "payload), or validate and summarize an existing file "
            "(`show`).  Workload files drive `repro loadtest`."
        ),
    )
    workload_sub = workload_cmd.add_subparsers(dest="action", required=True)
    workload_export = workload_sub.add_parser(
        "export", help="write a workload file from recorded traffic"
    )
    workload_export.add_argument(
        "--url", help="base URL of a running service to scrape"
    )
    workload_export.add_argument(
        "--from-json",
        metavar="FILE",
        help="a saved /debug/queries JSON payload instead of a live URL",
    )
    workload_export.add_argument(
        "--limit", type=int, default=500, help="records to scrape (default: 500)"
    )
    workload_export.add_argument(
        "--name", default="recorded", help="workload name in the header"
    )
    workload_export.add_argument(
        "--churn",
        action="append",
        default=[],
        metavar="SPEC",
        help=(
            "append a write op 'RELATION:v1,v2,...' — replay inserts "
            "then deletes one unique row per draw (repeatable)"
        ),
    )
    workload_export.add_argument(
        "-o", "--output", help="output file (default: stdout)"
    )
    workload_show = workload_sub.add_parser(
        "show", help="validate and summarize a workload file"
    )
    workload_show.add_argument("file", help="workload file to inspect")
    workload_show.add_argument(
        "--json", action="store_true", help="emit header and entries as JSON"
    )
    workload_cmd.set_defaults(handler=_cmd_workload)

    loadtest = subparsers.add_parser(
        "loadtest",
        help="replay a workload across a concurrency × mix sweep",
        description=(
            "Drive a workload file against a live service (--url) or an "
            "in-process broker (data arguments), sweeping concurrency "
            "levels × read/write mixes with a seeded RNG.  Every "
            "replayed answer is verified bit-identical against a serial "
            "reference pass; exit status 1 if any cell fails "
            "verification.  Churn relations named by the workload are "
            "registered automatically for in-process runs."
        ),
    )
    loadtest.add_argument("workload", help="workload file (see `repro workload`)")
    loadtest.add_argument(
        "--url", help="base URL of a running service (default: in-process)"
    )
    _add_data_arguments(loadtest)
    loadtest.add_argument("--family", choices=_FAMILY_CODES, default="Rep")
    loadtest.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="in-process broker worker count (0 = all cores)",
    )
    loadtest.add_argument(
        "--concurrency",
        default="1,4",
        metavar="LIST",
        help="comma-separated worker counts to sweep (default: 1,4)",
    )
    loadtest.add_argument(
        "--write-fraction",
        default="0,0.2",
        metavar="LIST",
        help="comma-separated write fractions to sweep (default: 0,0.2)",
    )
    loadtest.add_argument(
        "--requests", type=int, default=200,
        help="operations per swept cell (default: 200)",
    )
    loadtest.add_argument(
        "--mode", choices=["closed", "open"], default="closed",
        help="closed = issue on completion; open = fixed arrival rate",
    )
    loadtest.add_argument(
        "--rate", type=float, default=None, metavar="OPS",
        help="open-loop offered rate in ops/second (whole cell)",
    )
    loadtest.add_argument(
        "--seed", type=int, default=0, help="RNG seed (default: 0)"
    )
    loadtest.add_argument(
        "--json", action="store_true", help="emit per-cell results as JSON"
    )
    loadtest.set_defaults(handler=_cmd_loadtest)

    examples = subparsers.add_parser("examples", help="show the paper's examples")
    examples.add_argument("--name", help="scenario name (default: all)")
    examples.set_defaults(handler=_cmd_examples)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
