"""Unit tests for functional dependencies."""

import pytest

from repro.constraints.fd import (
    FunctionalDependency,
    key_dependency,
    parse_fd_set,
    validate_fd_set,
)
from repro.exceptions import ConstraintError, ConstraintSyntaxError
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema

MGR = RelationSchema("Mgr", ["Name", "Dept", "Salary:number", "Reports:number"])


class TestParsing:
    def test_basic(self):
        fd = FunctionalDependency.parse("Dept -> Name, Salary")
        assert fd.lhs == {"Dept"}
        assert fd.rhs == {"Name", "Salary"}

    def test_space_separated_rhs(self):
        fd = FunctionalDependency.parse("A B -> C D")
        assert fd.lhs == {"A", "B"} and fd.rhs == {"C", "D"}

    def test_relation_prefix(self):
        fd = FunctionalDependency.parse("Mgr: Dept -> Name")
        assert fd.relation == "Mgr"

    def test_relation_prefix_conflict(self):
        with pytest.raises(ConstraintSyntaxError):
            FunctionalDependency.parse("Mgr: Dept -> Name", relation="Emp")

    def test_empty_lhs_allowed(self):
        fd = FunctionalDependency.parse(" -> A")
        assert fd.lhs == frozenset()

    def test_missing_arrow(self):
        with pytest.raises(ConstraintSyntaxError):
            FunctionalDependency.parse("A B C")

    def test_empty_rhs(self):
        with pytest.raises(ConstraintSyntaxError):
            FunctionalDependency.parse("A -> ")

    def test_bad_attribute_name(self):
        with pytest.raises(ConstraintSyntaxError):
            FunctionalDependency.parse("A -> B-C")

    def test_parse_fd_set(self):
        fds = parse_fd_set(["A -> B", "B -> C"], relation="R")
        assert all(fd.relation == "R" for fd in fds)


class TestConflicting:
    def test_conflict_detected(self):
        fd = FunctionalDependency.parse("Dept -> Name", "Mgr")
        a = Row(MGR, ("Mary", "R&D", 40, 3))
        b = Row(MGR, ("John", "R&D", 10, 2))
        assert fd.conflicting(a, b)
        assert fd.conflicting(b, a)

    def test_agreement_on_rhs_is_no_conflict(self):
        fd = FunctionalDependency.parse("Name -> Dept", "Mgr")
        a = Row(MGR, ("Mary", "R&D", 40, 3))
        b = Row(MGR, ("Mary", "R&D", 10, 2))
        assert not fd.conflicting(a, b)

    def test_different_lhs_is_no_conflict(self):
        fd = FunctionalDependency.parse("Dept -> Name", "Mgr")
        a = Row(MGR, ("Mary", "R&D", 40, 3))
        b = Row(MGR, ("John", "IT", 10, 2))
        assert not fd.conflicting(a, b)

    def test_other_relation_is_no_conflict(self):
        fd = FunctionalDependency.parse("Dept -> Name", "Emp")
        a = Row(MGR, ("Mary", "R&D", 40, 3))
        b = Row(MGR, ("John", "R&D", 10, 2))
        assert not fd.conflicting(a, b)

    def test_multi_attribute_rhs_any_difference(self):
        fd = FunctionalDependency.parse("Name -> Dept, Salary", "Mgr")
        a = Row(MGR, ("Mary", "R&D", 40, 3))
        b = Row(MGR, ("Mary", "R&D", 10, 3))
        assert fd.conflicting(a, b)


class TestValidation:
    def test_validate_against_schema(self):
        fd = FunctionalDependency.parse("Dept -> Name", "Mgr")
        fd.validate_against(MGR)  # no exception

    def test_unknown_attribute_rejected(self):
        fd = FunctionalDependency.parse("Dept -> Bogus", "Mgr")
        with pytest.raises(Exception):
            fd.validate_against(MGR)

    def test_wrong_relation_rejected(self):
        fd = FunctionalDependency.parse("Dept -> Name", "Emp")
        with pytest.raises(ConstraintError):
            fd.validate_against(MGR)

    def test_validate_fd_set(self):
        validate_fd_set(parse_fd_set(["Dept -> Name"], "Mgr"), MGR)


class TestKeyDependency:
    def test_key_builds_full_rhs(self):
        fd = key_dependency(MGR, ["Name"])
        assert fd.rhs == {"Dept", "Salary", "Reports"}
        assert fd.is_key_for(MGR)

    def test_non_key_detected(self):
        fd = FunctionalDependency.parse("Name -> Dept", "Mgr")
        assert not fd.is_key_for(MGR)

    def test_trivial_key_rejected(self):
        with pytest.raises(ConstraintError):
            key_dependency(MGR, MGR.attribute_names)

    def test_equality_and_hash(self):
        a = FunctionalDependency.parse("A -> B")
        b = FunctionalDependency(["A"], ["B"])
        assert a == b and hash(a) == hash(b)
        assert a != FunctionalDependency(["A"], ["B"], "R")
