"""Random repair sampling.

Exact enumeration is exponential; the samplers here draw maximal
independent sets cheaply for testing and for benchmark workload
construction.  The greedy sampler is *not* uniform over repairs (no
polynomial uniform sampler is known — counting is #P-hard); it is
uniform over the random-permutation greedy process, which suffices for
property-based testing and workload diversity.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterator, List, Optional, Set

from repro.constraints.conflict_graph import ConflictGraph
from repro.relational.rows import Row, sorted_rows
from repro.repairs.enumerate import repair_sort_key


def random_repair(
    graph: ConflictGraph, rng: Optional[random.Random] = None
) -> FrozenSet[Row]:
    """One maximal independent set from a random greedy pass."""
    rng = rng or random.Random()
    order = sorted_rows(graph.vertices)
    rng.shuffle(order)
    chosen: Set[Row] = set()
    for vertex in order:
        if not graph.neighbours(vertex) & chosen:
            chosen.add(vertex)
    return frozenset(chosen)


def sample_repairs(
    graph: ConflictGraph,
    count: int,
    rng: Optional[random.Random] = None,
    distinct: bool = False,
    max_attempts_factor: int = 20,
) -> List[FrozenSet[Row]]:
    """Draw ``count`` repairs (optionally distinct).

    With ``distinct=True`` the sampler retries up to
    ``count * max_attempts_factor`` times and may return fewer repairs
    than requested when the repair space is small.
    """
    rng = rng or random.Random()
    if not distinct:
        return [random_repair(graph, rng) for _ in range(count)]
    seen: Set[FrozenSet[Row]] = set()
    attempts = 0
    while len(seen) < count and attempts < count * max_attempts_factor:
        seen.add(random_repair(graph, rng))
        attempts += 1
    # Canonical listing order: the same key enumeration and the engines
    # use, so sampled and enumerated collections interleave identically.
    return sorted(seen, key=repair_sort_key)
