"""A reader-writer lock for per-database broker entries.

The broker's original per-database lock was exclusive: two read-only
queries on one database serialized even though nothing they touch
conflicts.  :class:`ReadWriteLock` lets any number of readers proceed
together while writers (updates, priority declarations) get exclusive
access.

Writer preference: once a writer is waiting, new readers queue behind
it, so a steady read stream cannot starve updates.  The lock also
counts *overlapping* read sections (``concurrent_reads``) — the
broker surfaces the total through ``stats()`` as direct evidence that
intra-database read concurrency actually happens.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs import REGISTRY


def _record_wait(side: str, started: float) -> None:
    """Wait-time histogram per lock side ("read" / "write")."""
    if not REGISTRY.enabled:
        return
    REGISTRY.histogram(
        "repro_lock_wait_seconds",
        "Time spent waiting to acquire the per-database rwlock",
        labels=("side",),
    ).labels(side=side).observe(time.perf_counter() - started)


class ReadWriteLock:
    """Writer-preferring reader-writer lock with an overlap counter."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0  # guarded-by: _condition
        self._waiting_writers = 0  # guarded-by: _condition
        self._writer_active = False  # guarded-by: _condition
        #: Number of read sections that began while another reader was
        #: already inside (monotonic; a concurrency witness, not a gauge).
        self.concurrent_reads = 0  # guarded-by: _condition

    # Readers -----------------------------------------------------------------

    def acquire_read(self) -> None:
        started = time.perf_counter()
        with self._condition:
            while self._writer_active or self._waiting_writers:
                self._condition.wait()
            if self._active_readers:
                self.concurrent_reads += 1
            self._active_readers += 1
        _record_wait("read", started)

    def release_read(self) -> None:
        with self._condition:
            self._active_readers -= 1
            if not self._active_readers:
                self._condition.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # Writers -----------------------------------------------------------------

    def acquire_write(self) -> None:
        started = time.perf_counter()
        with self._condition:
            self._waiting_writers += 1
            try:
                while self._writer_active or self._active_readers:
                    self._condition.wait()
            finally:
                self._waiting_writers -= 1
            self._writer_active = True
        _record_wait("write", started)

    def release_write(self) -> None:
        with self._condition:
            self._writer_active = False
            self._condition.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
