"""Load generator: deterministic schedules, bit-identical verification
against the serial reference, open/closed loops, and admission control
(in-flight limit, bounded queue, 503 rejection over HTTP)."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.datagen.generators import CHAIN_FDS, chain_instance
from repro.exceptions import AdmissionError
from repro.obs.workload import Workload, WorkloadEntry
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.service.broker import AdmissionController, Request, RequestBroker
from repro.service.loadgen import (
    CellSpec,
    InProcessTarget,
    LoadGenError,
    LoadGenerator,
    build_schedule,
    canonical_answer,
)
from repro.service.server import ServiceFrontEnd, make_http_server

SCRATCH = RelationSchema("W", ["K:number", "V:number"])

WORKLOAD = Workload(
    entries=(
        WorkloadEntry(
            kind="query",
            query="EXISTS b, c, d . R(a, b, c, d)",
            variables=("a",),
            weight=3,
        ),
        WorkloadEntry(
            kind="query",
            query="EXISTS a, b, c, d . R(a, b, c, d) AND a >= 2",
            family="G",
        ),
        WorkloadEntry(kind="churn", relation="W", values=(0, 7)),
    ),
    name="test",
)


@pytest.fixture
def broker():
    broker = RequestBroker()
    broker.register(
        "default",
        Database([chain_instance(5), RelationInstance(SCRATCH)]),
        CHAIN_FDS,
    )
    yield broker
    broker.close()


@pytest.fixture
def generator(broker):
    return LoadGenerator(InProcessTarget(ServiceFrontEnd(broker)), WORKLOAD)


class TestSchedule:
    def test_same_seed_same_schedule(self):
        spec = CellSpec(concurrency=3, write_fraction=0.4, requests=50, seed=9)
        assert build_schedule(WORKLOAD, spec) == build_schedule(WORKLOAD, spec)

    def test_different_seed_different_schedule(self):
        a = CellSpec(concurrency=2, write_fraction=0.5, requests=50, seed=1)
        b = CellSpec(concurrency=2, write_fraction=0.5, requests=50, seed=2)
        assert build_schedule(WORKLOAD, a) != build_schedule(WORKLOAD, b)

    def test_all_requests_dealt_across_workers(self):
        spec = CellSpec(concurrency=3, write_fraction=0.0, requests=10)
        schedule = build_schedule(WORKLOAD, spec)
        assert len(schedule) == 3
        assert sum(len(ops) for ops in schedule) == 10

    def test_churn_draws_are_globally_unique(self):
        spec = CellSpec(concurrency=4, write_fraction=1.0, requests=30)
        schedule = build_schedule(WORKLOAD, spec)
        draws = [op.draw for ops in schedule for op in ops]
        assert len(draws) == len(set(draws)) == 30

    def test_write_fraction_without_churn_entries_is_an_error(self):
        reads_only = Workload(entries=WORKLOAD.reads)
        with pytest.raises(LoadGenError, match="churn"):
            build_schedule(
                reads_only,
                CellSpec(concurrency=1, write_fraction=0.5, requests=5),
            )

    def test_read_fraction_without_query_entries_is_an_error(self):
        writes_only = Workload(entries=WORKLOAD.writes)
        with pytest.raises(LoadGenError, match="query"):
            build_schedule(
                writes_only,
                CellSpec(concurrency=1, write_fraction=0.5, requests=5),
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"concurrency": 0, "write_fraction": 0.0},
            {"concurrency": 1, "write_fraction": 1.5},
            {"concurrency": 1, "write_fraction": 0.0, "requests": 0},
            {"concurrency": 1, "write_fraction": 0.0, "mode": "wat"},
            {"concurrency": 1, "write_fraction": 0.0, "mode": "open"},
        ],
    )
    def test_bad_specs_are_rejected(self, kwargs):
        with pytest.raises(LoadGenError):
            CellSpec(**kwargs)


class TestCanonicalAnswer:
    def test_volatile_provenance_is_stripped(self):
        a = {"kind": "open", "certain": [[1]], "cached": True,
             "shared": False, "trace_id": "x", "tag": "t"}
        b = {"kind": "open", "certain": [[1]], "cached": False,
             "shared": True, "trace_id": "y"}
        assert canonical_answer(a) == canonical_answer(b)

    def test_answer_content_differences_survive(self):
        a = {"kind": "open", "certain": [[1]]}
        b = {"kind": "open", "certain": [[2]]}
        assert canonical_answer(a) != canonical_answer(b)


class TestReplay:
    def test_closed_cell_verifies_bit_identical_under_churn(self, generator):
        cell = generator.run_cell(
            CellSpec(concurrency=4, write_fraction=0.3, requests=60, seed=3)
        )
        assert cell.verified
        assert cell.completed == 60
        assert cell.rejected == 0
        assert len(cell.latencies_ms) == 60
        assert cell.throughput > 0
        assert cell.percentile(50) <= cell.percentile(95) <= cell.percentile(99)

    def test_open_cell_measures_from_planned_start(self, generator):
        cell = generator.run_cell(
            CellSpec(
                concurrency=2, write_fraction=0.0, requests=20,
                mode="open", rate=1000.0, seed=5,
            )
        )
        assert cell.verified and cell.completed == 20
        # 20 ops at 1000 ops/s arrive over ~20ms: the cell cannot
        # finish faster than its arrival schedule.
        assert cell.duration_s >= 0.019

    def test_churn_leaves_the_instance_unchanged(self, broker, generator):
        before = broker.engine().graph.vertex_count
        cell = generator.run_cell(
            CellSpec(concurrency=3, write_fraction=1.0, requests=30, seed=1)
        )
        assert cell.verified
        assert broker.engine().graph.vertex_count == before

    def test_replay_detects_diverging_answers(self, broker, generator):
        reference = generator.serial_reference()
        # Mutate the queried relation after the reference pass: replayed
        # answers now legitimately differ and must be flagged.
        row = next(iter(chain_instance(9).rows - chain_instance(5).rows))
        broker.insert(row)
        cell = generator.run_cell(
            CellSpec(concurrency=2, write_fraction=0.0, requests=20, seed=2),
            reference,
        )
        assert not cell.verified
        assert cell.mismatches

    def test_reference_failure_is_an_error(self, broker):
        bad = Workload(
            entries=(WorkloadEntry(kind="query", query="EXISTS ( . broken"),)
        )
        generator = LoadGenerator(
            InProcessTarget(ServiceFrontEnd(broker)), bad
        )
        with pytest.raises(LoadGenError, match="reference"):
            generator.serial_reference()

    def test_sweep_covers_the_grid(self, generator):
        results = generator.sweep(
            [1, 2], [0.0, 0.5], requests=16, seed=4
        )
        assert len(results) == 4
        assert all(result.verified for result in results)
        grid = {
            (r.spec.concurrency, r.spec.write_fraction) for r in results
        }
        assert grid == {(1, 0.0), (2, 0.0), (1, 0.5), (2, 0.5)}


class TestAdmissionController:
    def test_unlimited_by_default_still_counts(self):
        controller = AdmissionController()
        with controller.admit():
            assert controller.stats()["inflight"] == 1
        assert controller.stats()["inflight"] == 0
        assert controller.stats()["max_inflight"] is None

    def test_overflow_beyond_queue_is_rejected(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        with controller.admit():
            with pytest.raises(AdmissionError, match="saturated"):
                with controller.admit():
                    pass
        assert controller.stats()["rejected"] == 1

    def test_queued_submission_proceeds_when_slot_frees(self):
        controller = AdmissionController(max_inflight=1, max_queue=1)
        entered = threading.Event()
        release = threading.Event()
        served = []

        def holder():
            with controller.admit():
                entered.set()
                release.wait(timeout=5)

        def waiter():
            with controller.admit():
                served.append(True)

        hold = threading.Thread(target=holder)
        hold.start()
        entered.wait(timeout=5)
        wait = threading.Thread(target=waiter)
        wait.start()
        while controller.stats()["queued"] == 0 and wait.is_alive():
            pass
        release.set()
        hold.join(timeout=5)
        wait.join(timeout=5)
        assert served == [True]
        assert controller.stats()["rejected"] == 0

    @pytest.mark.parametrize("kwargs", [
        {"max_inflight": 0}, {"max_inflight": 2, "max_queue": -1},
    ])
    def test_bad_limits_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)


class TestBrokerAdmission:
    def test_submit_raises_when_saturated(self, broker):
        broker.admission.max_inflight = 1
        broker.admission.max_queue = 0
        with broker.admission.admit():
            with pytest.raises(AdmissionError):
                broker.submit([Request("EXISTS a, b, c, d . R(a, b, c, d)")])
        assert broker.stats()["admission"]["rejected"] == 1

    def test_stats_reports_admission_block(self, broker):
        block = broker.stats()["admission"]
        assert block == {
            "max_inflight": None, "max_queue": 0,
            "inflight": 0, "queued": 0, "rejected": 0,
        }


class TestCliWorkloadLoadtest:
    """`repro workload export/show` and `repro loadtest` end to end."""

    @pytest.fixture
    def csv_file(self, tmp_path):
        path = tmp_path / "emp.csv"
        path.write_text(
            "Name,Dept\nalice,cs\nalice,math\nbob,cs\nbob,bio\ncarol,cs\n"
        )
        return str(path)

    @pytest.fixture
    def debug_payload(self, tmp_path):
        records = [
            {"trace_id": f"t{i}", "query": query, "family": "G-Rep",
             "engine": "sqlite", "route": "sqlite", "millis": 1.0,
             "seconds": 0.001, "started_at": float(i)}
            for i, query in enumerate(
                ["EXISTS d . emp(x, d)", "EXISTS d . emp(x, d)",
                 'EXISTS x . emp(x, "cs")']
            )
        ]
        path = tmp_path / "debug.json"
        path.write_text(json.dumps({"queries": records}))
        return str(path)

    def _export(self, tmp_path, debug_payload) -> str:
        from repro.cli import main

        out = str(tmp_path / "w.jsonl")
        assert main([
            "workload", "export", "--from-json", debug_payload,
            "--churn", "scratch:0,1", "--name", "demo", "-o", out,
        ]) == 0
        return out

    def test_export_writes_deterministic_weighted_file(
        self, tmp_path, debug_payload, capsys
    ):
        from repro.obs.workload import load

        path = self._export(tmp_path, debug_payload)
        assert "wrote 3 entries" in capsys.readouterr().out
        workload = load(path)
        assert workload.name == "demo"
        weights = {e.query: e.weight for e in workload.reads}
        assert weights == {
            "EXISTS d . emp(x, d)": 2, 'EXISTS x . emp(x, "cs")': 1,
        }
        assert [e.relation for e in workload.writes] == ["scratch"]

    def test_show_summarizes_and_validates(
        self, tmp_path, debug_payload, capsys
    ):
        from repro.cli import main

        path = self._export(tmp_path, debug_payload)
        capsys.readouterr()
        assert main(["workload", "show", path]) == 0
        out = capsys.readouterr().out
        assert "3 entries (2 query, 1 churn)" in out
        assert main(["workload", "show", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["header"]["workload"] == "repro-workload"
        assert len(payload["entries"]) == 3

    def test_show_rejects_corrupt_files(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text("not a workload\n")
        with pytest.raises(SystemExit, match="header"):
            main(["workload", "show", str(bad)])

    def test_export_needs_a_source(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--url or --from-json"):
            main(["workload", "export"])

    def test_bad_churn_spec_is_rejected(self, debug_payload):
        from repro.cli import main

        with pytest.raises(SystemExit, match="churn"):
            main([
                "workload", "export", "--from-json", debug_payload,
                "--churn", "nocolon",
            ])

    def test_loadtest_sweeps_verifies_and_reports(
        self, tmp_path, csv_file, debug_payload, capsys
    ):
        from repro.cli import main

        path = self._export(tmp_path, debug_payload)
        capsys.readouterr()
        assert main([
            "loadtest", path, "--csv", csv_file, "--fd", "Name -> Dept",
            "--concurrency", "1,2", "--write-fraction", "0,0.25",
            "--requests", "20", "--seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out
        assert out.count("yes") == 4

    def test_loadtest_json_carries_cells_and_exemplars(
        self, tmp_path, csv_file, debug_payload, capsys
    ):
        from repro.cli import main

        path = self._export(tmp_path, debug_payload)
        capsys.readouterr()
        assert main([
            "loadtest", path, "--csv", csv_file, "--fd", "Name -> Dept",
            "--concurrency", "2", "--write-fraction", "0.2",
            "--requests", "20", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "demo"
        (cell,) = payload["cells"]
        assert cell["verified"] is True
        assert cell["completed"] == 20
        assert cell["trace_exemplars"]

    def test_loadtest_rejects_bad_grid_and_missing_file(self, csv_file):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["loadtest", "/nonexistent.jsonl", "--csv", csv_file,
                  "--fd", "Name -> Dept"])


class TestHttpRejection:
    def test_saturated_service_answers_503(self, broker):
        broker.admission.max_inflight = 1
        broker.admission.max_queue = 0
        front = ServiceFrontEnd(broker)
        server = make_http_server(front, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            request = urllib.request.Request(
                f"http://{host}:{port}/query",
                data=json.dumps(
                    {"query": "EXISTS a, b, c, d . R(a, b, c, d)"}
                ).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with broker.admission.admit():
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request)
                assert excinfo.value.code == 503
                body = json.loads(excinfo.value.read())
                assert body["rejected"] is True
                assert "saturated" in body["error"]
            # Slot released: the same request now succeeds.
            with urllib.request.urlopen(request) as response:
                assert response.status == 200
        finally:
            server.shutdown()
            server.server_close()
