"""Unit tests for the related-work baselines."""

import pytest

from repro.baselines.cleaning import UnresolvedPolicy, clean_database
from repro.baselines.ranking import resolve_by_rank, resolve_with_fusion
from repro.baselines.stratified import preferred_subtheories, stratified_priority
from repro.constraints.conflicts import is_consistent
from repro.core.cleaning import all_cleaning_results
from repro.datagen.paper_instances import mgr_scenario, mgr_source_of
from repro.exceptions import PriorityError


class TestCleaningBaseline:
    def test_example3_cleaning_leaves_inconsistency(self):
        """Example 3: cleaning with partial reliability information
        yields r' = {(Mary,R&D,40,3), (John,R&D,10,2)} — inconsistent."""
        scenario = mgr_scenario()
        outcome = clean_database(scenario.priority, UnresolvedPolicy.KEEP)
        assert outcome.kept == scenario.row_set("mary_rd", "john_rd")
        assert outcome.removed == scenario.row_set("mary_it", "john_pr")
        assert not outcome.is_consistent
        assert not is_consistent(outcome.kept, scenario.dependencies)
        assert len(outcome.unresolved_conflicts) == 1

    def test_contingency_policy_restores_consistency(self):
        scenario = mgr_scenario()
        outcome = clean_database(scenario.priority, UnresolvedPolicy.CONTINGENCY)
        assert outcome.is_consistent
        assert outcome.kept == frozenset()  # both survivors were conflicting
        assert outcome.contingency == scenario.row_set("mary_rd", "john_rd")

    def test_total_priority_cleaning_consistent(self):
        from repro.datagen.paper_instances import example8_scenario

        scenario = example8_scenario()
        outcome = clean_database(scenario.priority)
        assert outcome.is_consistent
        assert outcome.kept == scenario.row_set("tc")


class TestRankingBaseline:
    def test_unique_repair_from_ranks(self):
        scenario = mgr_scenario()
        ranks = {
            scenario.rows["mary_rd"]: 4.0,
            scenario.rows["john_rd"]: 3.0,
            scenario.rows["mary_it"]: 2.0,
            scenario.rows["john_pr"]: 1.0,
        }
        repair = resolve_by_rank(scenario.graph, ranks.__getitem__)
        assert repair == scenario.row_set("mary_rd", "john_pr")
        assert scenario.graph.is_maximal_independent(repair)

    def test_ties_on_conflicts_rejected(self):
        scenario = mgr_scenario()
        with pytest.raises(PriorityError):
            resolve_by_rank(scenario.graph, lambda row: 1.0)

    def test_fusion_on_ties(self):
        scenario = mgr_scenario()
        result = resolve_with_fusion(scenario.graph, lambda row: 1.0)
        # The single conflict component fuses into one invented tuple.
        assert len(result.fused) == 1
        fused = result.fused[0]
        # Numeric attributes are averaged over the component's tuples.
        assert fused["Salary"] == (40 + 10 + 20 + 30) // 4
        assert result.invented == result.fused

    def test_fusion_keeps_unique_top(self):
        scenario = mgr_scenario()
        ranks = {
            scenario.rows["mary_rd"]: 4.0,
            scenario.rows["john_rd"]: 3.0,
            scenario.rows["mary_it"]: 2.0,
            scenario.rows["john_pr"]: 1.0,
        }
        result = resolve_with_fusion(scenario.graph, ranks.__getitem__)
        assert result.fused == ()
        assert scenario.rows["mary_rd"] in result.kept

    def test_isolated_tuples_always_kept(self):
        from repro.constraints.conflict_graph import build_conflict_graph
        from repro.datagen.generators import GRID_FDS
        from repro.relational.instance import RelationInstance
        from repro.datagen.generators import GRID_SCHEMA

        instance = RelationInstance.from_values(GRID_SCHEMA, [(1, 1), (2, 2)])
        graph = build_conflict_graph(instance, GRID_FDS)
        result = resolve_with_fusion(graph, lambda row: 0.0)
        assert result.kept == instance.rows


class TestStratifiedBaseline:
    def test_strata_induce_priority(self):
        scenario = mgr_scenario()
        sources = mgr_source_of()
        stratum = {"s1": 0, "s2": 0, "s3": 1}
        priority = stratified_priority(
            scenario.graph, lambda row: stratum[sources[row]]
        )
        assert priority.edges == scenario.priority.edges

    def test_subtheories_match_crep_on_stratified_priority(self):
        """[4]'s construction is 'analogous to C-repairs' (paper §5)."""
        scenario = mgr_scenario()
        sources = mgr_source_of()
        stratum = {"s1": 0, "s2": 0, "s3": 1}

        def stratum_of(row):
            return stratum[sources[row]]

        subtheories = set(preferred_subtheories(scenario.graph, stratum_of))
        priority = stratified_priority(scenario.graph, stratum_of)
        assert subtheories == set(all_cleaning_results(priority))

    def test_subtheories_are_repairs(self):
        scenario = mgr_scenario()
        sources = mgr_source_of()
        stratum = {"s1": 0, "s2": 1, "s3": 2}
        for subtheory in preferred_subtheories(
            scenario.graph, lambda row: stratum[sources[row]]
        ):
            assert scenario.graph.is_maximal_independent(subtheory)

    def test_single_stratum_gives_all_repairs(self):
        from repro.repairs.enumerate import enumerate_repairs

        scenario = mgr_scenario()
        subtheories = set(preferred_subtheories(scenario.graph, lambda row: 0))
        assert subtheories == set(enumerate_repairs(scenario.graph))


class TestBaselineAnswers:
    """Baseline resolutions answered on the shared indexed machinery."""

    QUERY = "EXISTS d, r . Mgr(n, d, s, r)"

    def test_cleaned_answers_match_kept_rows(self):
        from repro.baselines.answers import cleaned_answers
        from repro.query.evaluator import answers as evaluate_answers
        from repro.query.parser import parse_query

        scenario = mgr_scenario()
        outcome = clean_database(scenario.priority, UnresolvedPolicy.KEEP)
        result = cleaned_answers(outcome, self.QUERY)
        expected = evaluate_answers(
            parse_query(self.QUERY), outcome.kept, ("n", "s")
        )
        assert result.certain == expected
        assert result.possible == expected  # one alternative: no dispute
        assert result.repairs_considered == 1
        assert result.route == "indexed"

    def test_cleaning_overconfidence_versus_cqa(self):
        """Example 3's point: the cleaned table treats answers that rest
        on an unresolved conflict as certain; Definition 3 does not."""
        from repro.baselines.answers import cleaned_answers
        from repro.cqa.engine import CqaEngine

        scenario = mgr_scenario()
        outcome = clean_database(scenario.priority, UnresolvedPolicy.KEEP)
        cleaned = cleaned_answers(outcome, self.QUERY)
        engine = CqaEngine(
            scenario.instance, scenario.dependencies, scenario.priority.edges
        )
        cqa = engine.certain_answers(self.QUERY)
        assert not outcome.is_consistent
        assert cleaned.certain - cqa.certain  # over-confident claims exist

    def test_subtheory_answers_agree_with_per_alternative_evaluation(self):
        from repro.baselines.answers import baseline_answers
        from repro.query.evaluator import answers as evaluate_answers
        from repro.query.parser import parse_query

        scenario = mgr_scenario()
        stratum = {row: 0 for row in scenario.graph.vertices}
        for name in ("mary_it", "john_rd"):
            stratum[scenario.rows[name]] = 1
        subtheories = preferred_subtheories(scenario.graph, stratum.__getitem__)
        result = baseline_answers(subtheories, self.QUERY)
        formula = parse_query(self.QUERY)
        per_alternative = [
            evaluate_answers(formula, alternative, ("n", "s"))
            for alternative in subtheories
        ]
        assert result.certain == frozenset.intersection(*per_alternative)
        assert result.possible == frozenset.union(*per_alternative)
        assert result.repairs_considered == len(subtheories)

    def test_naive_route_agrees_and_is_recorded(self):
        from repro.baselines.answers import baseline_answers

        scenario = mgr_scenario()
        stratum = {row: 0 for row in scenario.graph.vertices}
        subtheories = preferred_subtheories(scenario.graph, stratum.__getitem__)
        indexed = baseline_answers(subtheories, self.QUERY)
        naive = baseline_answers(subtheories, self.QUERY, naive=True)
        assert naive.certain == indexed.certain
        assert naive.possible == indexed.possible
        assert (naive.route, indexed.route) == ("naive", "indexed")

    def test_no_alternatives_is_an_error(self):
        from repro.baselines.answers import baseline_answers
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            baseline_answers([], self.QUERY)
