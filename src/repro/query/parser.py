"""Recursive-descent parser for the paper's first-order query syntax.

Grammar (case-insensitive keywords, ``#`` comments to end of line)::

    formula     := quantified
    quantified  := (EXISTS | FORALL) var ("," var)* "." quantified
                 | implication
    implication := disjunction (IMPLIES quantified)?
    disjunction := conjunction (OR conjunction)*
    conjunction := negation (AND negation)*
    negation    := NOT negation | primary
    primary     := "(" formula ")" | TRUE | FALSE | atom | comparison
    atom        := RelName "(" term ("," term)* ")"
    comparison  := term ("=" | "!=" | "<>" | "<" | ">" | "<=" | ">=") term
    term        := variable | constant

Identifier convention (matching the paper's typography): identifiers
beginning with a lowercase letter are *variables* (``x1``, ``y``);
identifiers beginning with an uppercase letter are *name constants*
(``Mary``) — except immediately before ``(`` where they are relation
names.  Quoted strings (``'R&D'``) are always name constants; decimal
literals are natural-number constants.  Unicode connectives ``∃ ∀ ∧ ∨ ¬
→ ≠ ≤ ≥`` are accepted as aliases.

Example (query Q1 of the paper)::

    EXISTS x1, y1, z1, x2, y2, z2 .
        Mgr(Mary, x1, y1, z1) AND Mgr(John, x2, y2, z2) AND y1 < y2
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.exceptions import QuerySyntaxError
from repro.query.ast import (
    And,
    Atom,
    Comparison,
    Const,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Term,
    TrueFormula,
    Var,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<number>\d+)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|<>|≠|≤|≥|=|<|>)
  | (?P<punct>[(),.])
  | (?P<unicode>[∃∀∧∨¬→])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"EXISTS", "FORALL", "AND", "OR", "NOT", "IMPLIES", "TRUE", "FALSE"}

_UNICODE_ALIASES = {
    "∃": "EXISTS",
    "∀": "FORALL",
    "∧": "AND",
    "∨": "OR",
    "¬": "NOT",
    "→": "IMPLIES",
}

_OP_ALIASES = {"<>": "!=", "≠": "!=", "≤": "<=", "≥": ">="}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'op' | 'punct' | 'eof'
    text: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        value = match.group()
        if match.lastgroup == "ident":
            upper = value.upper()
            if upper in _KEYWORDS:
                tokens.append(_Token("keyword", upper, match.start()))
            else:
                tokens.append(_Token("ident", value, match.start()))
        elif match.lastgroup == "unicode":
            tokens.append(_Token("keyword", _UNICODE_ALIASES[value], match.start()))
        elif match.lastgroup == "op":
            tokens.append(_Token("op", _OP_ALIASES.get(value, value), match.start()))
        elif match.lastgroup == "number":
            tokens.append(_Token("number", value, match.start()))
        elif match.lastgroup == "string":
            tokens.append(_Token("string", value, match.start()))
        else:
            tokens.append(_Token("punct", value, match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


def _unquote(literal: str) -> str:
    body = literal[1:-1]
    return re.sub(r"\\(.)", r"\1", body)


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    # Token helpers ---------------------------------------------------------

    @property
    def _current(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._current
        self._index += 1
        return token

    def _error(self, message: str) -> QuerySyntaxError:
        token = self._current
        where = f"offset {token.position}" if token.kind != "eof" else "end of input"
        return QuerySyntaxError(f"{message} at {where} (near {token.text!r})")

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self._current
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._accept(kind, text)
        if token is None:
            raise self._error(f"expected {text or kind}")
        return token

    # Grammar ---------------------------------------------------------------

    def parse(self) -> Formula:
        formula = self._formula()
        if self._current.kind != "eof":
            raise self._error("trailing input after formula")
        return formula

    def _formula(self) -> Formula:
        return self._quantified()

    def _quantified(self) -> Formula:
        for keyword, node in (("EXISTS", Exists), ("FORALL", Forall)):
            if self._accept("keyword", keyword):
                variables = [self._variable_name()]
                while self._accept("punct", ","):
                    variables.append(self._variable_name())
                self._expect("punct", ".")
                return node(variables, self._quantified())
        return self._implication()

    def _variable_name(self) -> str:
        token = self._expect("ident")
        if not token.text[0].islower() and token.text[0] != "_":
            raise QuerySyntaxError(
                f"quantified variable {token.text!r} must start lowercase "
                f"(offset {token.position})"
            )
        return token.text

    def _implication(self) -> Formula:
        left = self._disjunction()
        if self._accept("keyword", "IMPLIES"):
            return Implies(left, self._quantified())
        return left

    def _disjunction(self) -> Formula:
        parts = [self._conjunction()]
        while self._accept("keyword", "OR"):
            parts.append(self._conjunction())
        return parts[0] if len(parts) == 1 else Or(parts)

    def _conjunction(self) -> Formula:
        parts = [self._negation()]
        while self._accept("keyword", "AND"):
            parts.append(self._negation())
        return parts[0] if len(parts) == 1 else And(parts)

    def _negation(self) -> Formula:
        if self._accept("keyword", "NOT"):
            return Not(self._negation())
        return self._primary()

    def _primary(self) -> Formula:
        if self._accept("punct", "("):
            inner = self._formula()
            self._expect("punct", ")")
            return inner
        if self._accept("keyword", "TRUE"):
            return TrueFormula()
        if self._accept("keyword", "FALSE"):
            return FalseFormula()
        if (
            self._current.kind == "ident"
            and self._peek_is_punct(1, "(")
        ):
            return self._atom()
        left = self._term()
        op_token = self._expect("op")
        right = self._term()
        return Comparison(op_token.text, left, right)

    def _peek_is_punct(self, offset: int, text: str) -> bool:
        index = self._index + offset
        if index >= len(self._tokens):
            return False
        token = self._tokens[index]
        return token.kind == "punct" and token.text == text

    def _atom(self) -> Formula:
        relation = self._expect("ident").text
        self._expect("punct", "(")
        terms = [self._term()]
        while self._accept("punct", ","):
            terms.append(self._term())
        self._expect("punct", ")")
        return Atom(relation, terms)

    def _term(self) -> Term:
        token = self._current
        if token.kind == "number":
            self._advance()
            return Const(int(token.text))
        if token.kind == "string":
            self._advance()
            return Const(_unquote(token.text))
        if token.kind == "ident":
            self._advance()
            if token.text[0].islower() or token.text[0] == "_":
                return Var(token.text)
            return Const(token.text)
        raise self._error("expected a term (variable or constant)")


def parse_query(text: str) -> Formula:
    """Parse query text into a :class:`~repro.query.ast.Formula`."""
    return _Parser(text).parse()
