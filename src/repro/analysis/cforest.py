"""Recognizer for C_forest key-join trees over dirty atoms.

The multi-dirty fallback (``RA201``) is not the end of the story: the
ConQuer line of work (Fuxman & Miller) proves that conjunctive queries
whose dirty atoms form *key-join trees* — every join into a dirty atom
enters through that atom's full key — remain first-order rewritable.
This pass detects the shape and explains it (``RA011``, informational);
compiling it is the ROADMAP's open C_forest item, which will cite this
code.

Detection criteria, over the atoms whose relation has a conflict
profile (the group attributes of the profile play the role of the key):

* at least two dirty atoms, each over a *distinct* relation (dirty
  self-joins stay outside C_forest);
* the variable-sharing graph of the dirty atoms is a forest (acyclic);
* each tree can be rooted so that for every parent→child edge, every
  key position of the child holds a constant or a variable of the
  parent, and every variable the child shares with its parent occurs
  only in key positions of the child (non-key sharing would correlate
  repair choices).

Clean atoms join freely — their relations are identical in every
repair, so they never couple repair choices.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.query.ast import Atom, Const, Var

from .model import Diagnostic, make_diagnostic
from .profiles import DirtyProfile
from .shapes import Classification


def _atom_variables(atom: Atom) -> Set[str]:
    return {term.name for term in atom.terms if isinstance(term, Var)}


def _key_positions(atom: Atom, profile: DirtyProfile, schema) -> List[int]:
    relation = schema.relation(atom.relation)
    group = set(profile.group)
    return [
        position
        for position, attribute in enumerate(relation.attributes)
        if attribute.name in group
    ]


def _edge_ok(
    parent: Atom,
    child: Atom,
    child_profile: DirtyProfile,
    schema,
) -> bool:
    """Is parent→child a key join? (child entered through its full key)"""
    parent_vars = _atom_variables(parent)
    key_positions = set(_key_positions(child, child_profile, schema))
    for position in key_positions:
        term = child.terms[position]
        if isinstance(term, Var) and term.name not in parent_vars:
            return False
    shared = parent_vars & _atom_variables(child)
    for position, term in enumerate(child.terms):
        if position in key_positions:
            continue
        if isinstance(term, Var) and term.name in shared:
            return False
    return True


def recognize_c_forest(
    classification: Classification, schema
) -> Optional[Diagnostic]:
    """An ``RA011`` diagnostic when the dirty atoms form a key-join
    forest, else ``None``.

    Only meaningful on classifications whose sole blocker is the
    multi-dirty interaction (``RA201``): shape defects or mixed-LHS
    theories leave no per-group class structure to rewrite over.
    """
    shape = classification.shape
    if shape is None or classification.empty_reason is not None:
        return None
    blocking = classification.blocking
    if not blocking or any(d.code != "RA201" for d in blocking):
        return None

    profiles = classification.profiles
    dirty = [
        (index, atom)
        for index, atom in enumerate(shape.atoms)
        if atom.relation in profiles
    ]
    if len(dirty) < 2:
        return None
    relations = [atom.relation for _, atom in dirty]
    if len(set(relations)) != len(relations):
        return None  # dirty self-join: outside C_forest

    # Variable-sharing graph over the dirty atoms must be a forest.
    nodes = list(range(len(dirty)))
    edges: List[Tuple[int, int]] = []
    parent_of: Dict[int, int] = {node: node for node in nodes}

    def find(node: int) -> int:
        while parent_of[node] != node:
            parent_of[node] = parent_of[parent_of[node]]
            node = parent_of[node]
        return node

    for i in nodes:
        for j in nodes:
            if i >= j:
                continue
            if _atom_variables(dirty[i][1]) & _atom_variables(dirty[j][1]):
                root_i, root_j = find(i), find(j)
                if root_i == root_j:
                    return None  # cycle in the sharing graph
                parent_of[root_i] = root_j
                edges.append((i, j))

    adjacency: Dict[int, List[int]] = {node: [] for node in nodes}
    for i, j in edges:
        adjacency[i].append(j)
        adjacency[j].append(i)

    components: Dict[int, List[int]] = {}
    for node in nodes:
        components.setdefault(find(node), []).append(node)

    oriented: List[Tuple[int, int]] = []  # (parent, child) over all trees
    for members in components.values():
        orientation = _orient_tree(members, adjacency, dirty, profiles, schema)
        if orientation is None:
            return None
        oriented.extend(orientation)

    explanation = _explain(dirty, oriented, profiles)
    return make_diagnostic("RA011", explanation=explanation)


def _orient_tree(
    members: Sequence[int],
    adjacency: Dict[int, List[int]],
    dirty: Sequence[Tuple[int, Atom]],
    profiles: Dict[str, DirtyProfile],
    schema,
) -> Optional[List[Tuple[int, int]]]:
    """Try each member as root; the trees are tiny, O(n^2) is fine."""
    for root in members:
        oriented: List[Tuple[int, int]] = []
        stack = [root]
        visited = {root}
        good = True
        while stack and good:
            node = stack.pop()
            for neighbour in adjacency[node]:
                if neighbour in visited:
                    continue
                child_atom = dirty[neighbour][1]
                if not _edge_ok(
                    dirty[node][1],
                    child_atom,
                    profiles[child_atom.relation],
                    schema,
                ):
                    good = False
                    break
                visited.add(neighbour)
                oriented.append((node, neighbour))
                stack.append(neighbour)
        if good and len(visited) == len(members):
            return oriented
    return None


def _explain(
    dirty: Sequence[Tuple[int, Atom]],
    oriented: Sequence[Tuple[int, int]],
    profiles: Dict[str, DirtyProfile],
) -> str:
    if not oriented:
        return "isolated dirty atoms (no shared variables)"
    steps = []
    for parent, child in oriented:
        child_atom = dirty[child][1]
        profile = profiles[child_atom.relation]
        steps.append(
            f"{child_atom.relation} joins {dirty[parent][1].relation} "
            f"through its key {list(profile.group)}"
        )
    return "; ".join(steps)
