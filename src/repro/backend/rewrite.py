"""ConQuer-style compilation of safe conjunctive queries to SQLite SQL.

The tractability results the paper builds on (and the ConQuer line of
work, Fuxman & Miller) say that for suitable conjunctive queries over
FD-violating instances, the *certain* answers — those true in every
repair — are computable by first-order rewriting instead of repair
enumeration.  This module implements that rewriting for the fragment
where it is sound and complete under this library's semantics:

* the query is conjunctive — an optional existential prefix over a
  conjunction of relational atoms and comparisons (exactly the image of
  the conjunctive-SQL frontend, plus anything of the same shape written
  in first-order syntax);
* every quantified or answer variable occurs in at least one atom
  (safety);
* the atoms over *dirty* relations — those whose functional
  dependencies can actually be violated — either number at most one, or
  form a C_forest key-join forest (see below); every dirty relation's
  FDs share one left-hand side ``K`` (so each ``K``-group's repairs are
  exactly its maximal classes of rows agreeing on the combined
  right-hand side ``Y``);
* comparisons respect the paper's two-domain semantics (see below).

For such a query the certain answers have a closed form: a tuple is
certain iff some witness assignment exists whose dirty row's ``K``-group
*certifies* it — every ``Y``-class of the group contains a row that
extends to a full witness producing the same answer tuple.  That is one
``SELECT`` with a doubly nested ``NOT EXISTS`` self-join, evaluated
entirely inside SQLite:

.. code-block:: sql

    SELECT DISTINCT <answers t>
    FROM R t0, S t1, ...
    WHERE <body over t*>
      AND NOT EXISTS (            -- no class of t's group ...
        SELECT 1 FROM R g
        WHERE g.K = t0.K
          AND NOT EXISTS (        -- ... fails to witness the answer
            SELECT 1 FROM R w0, S w1, ...
            WHERE <body over w*>
              AND w0.K = t0.K AND w0.Y = g.Y
              AND <answers w> = <answers t>))

*Possible* answers of such a query are simply its answers over the full
(unrepaired) instance: conjunctive queries are monotone and any single
row extends to some repair.

Several dirty atoms push too, when they form a *C_forest* — the
ConQuer/Fuxman-Miller class of key-join forests recognized by
:func:`repro.analysis.cforest.plan_forest`: every join path into a
dirty atom (clean chains included) enters through that atom's full key.
The certification then recurses down each tree — one ``NOT EXISTS``
pair per dirty atom, a child certification correlated with its parent
scope only through the child's key — so independent repair choices
factor instead of multiplying:

.. code-block:: sql

    SELECT DISTINCT <answers t>
    FROM R t0, C t1, S t2, ...         -- all atoms, clean ones free
    WHERE <body over t*>
      AND NOT EXISTS (                 -- per root dirty atom R ...
        SELECT 1 FROM R g0 WHERE g0.K = t0.K
          AND NOT EXISTS (             -- ... every class witnesses:
            SELECT 1 FROM R w0_0, C w0_1   -- R's region (clean below)
            WHERE <region body> AND w0_0.K = t0.K AND w0_0.Y = g0.Y
              AND <answers w> = <answers t>
              AND NOT EXISTS (         -- dirty child S, keyed from C
                SELECT 1 FROM S g1 WHERE g1.K2 = w0_1.B
                  AND NOT EXISTS (SELECT 1 FROM S w1_0 WHERE ...))))

Domain semantics: the paper's values split into uninterpreted names and
naturals, and SQLite's comparison affinity rules do not match them (a
``TEXT`` column compared with an integer literal would coerce).  The
compiler therefore type-checks every comparison and atom constant; a
conjunct that can never hold under two-domain semantics makes the whole
conjunction statically unsatisfiable (an *empty* plan — no SQL runs at
all), and a vacuously true ``!=`` across domains is dropped.

Since the ``repro.analysis`` subsystem landed, the *analysis* half of
this pipeline — shape extraction, safety, theory profiling, the static
two-domain typing — lives in :func:`repro.analysis.shapes.classify`;
this module keeps the SQL emission and attaches the classifier's
:class:`~repro.analysis.model.Diagnostic` records to every
:class:`RewriteDecision`.  Queries outside the fragment are reported
with the first blocking diagnostic's message as the fallback reason
(bit-identical to the historical fail-fast strings);
:class:`~repro.backend.engine.SqlCqaEngine` routes those to the
in-memory engine.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

# Conflict profiles moved to repro.analysis.profiles; re-exported here
# because the public import path predates the analysis subsystem.
from repro.analysis.model import Diagnostic, fallback_route
from repro.analysis.profiles import (  # noqa: F401  (re-exports)
    DirtyProfile,
    NotRewritable,
    dirty_profile,
)
from repro.analysis.shapes import Classification, classify
from repro.constraints.fd import FunctionalDependency
from repro.query.ast import Comparison, Const, Formula
from repro.relational.domain import Value
from repro.relational.schema import DatabaseSchema
from repro.relational.sqlite_io import quote_identifier

#: SQL spellings of the AST comparison operators.
_SQL_OPS = {"=": "=", "!=": "<>", "<": "<", ">": ">", "<=": "<=", ">=": ">="}


@dataclass(frozen=True)
class PlanResult:
    """Certain and possible answer sets produced by one plan run.

    Boolean (closed) queries use the nullary-tuple convention of the
    evaluator: ``frozenset({()})`` means satisfied.
    """

    certain: FrozenSet[Tuple[Value, ...]]
    possible: FrozenSet[Tuple[Value, ...]]


@dataclass(frozen=True)
class RewritePlan:
    """A compiled certain-answer query, ready to run on a connection."""

    kind: str  #: ``"clean"`` | ``"dirty"`` | ``"forest"`` | ``"empty"``
    answer_variables: Tuple[str, ...]
    certain_sql: Optional[str]
    certain_params: Tuple[Value, ...]
    possible_sql: Optional[str]
    possible_params: Tuple[Value, ...]
    description: str

    @property
    def is_boolean(self) -> bool:
        return not self.answer_variables

    def run(self, connection: sqlite3.Connection) -> PlanResult:
        """Execute the plan's SQL and collect both answer sets."""
        if self.kind == "empty":
            return PlanResult(frozenset(), frozenset())
        certain = self._execute(connection, self.certain_sql, self.certain_params)
        if self.kind == "clean":
            # Consistent relations are identical in every repair.
            return PlanResult(certain, certain)
        possible = self._execute(
            connection, self.possible_sql, self.possible_params
        )
        return PlanResult(certain, possible)

    def _execute(
        self,
        connection: sqlite3.Connection,
        sql: Optional[str],
        params: Tuple[Value, ...],
    ) -> FrozenSet[Tuple[Value, ...]]:
        assert sql is not None
        records = connection.execute(sql, params).fetchall()
        if self.is_boolean:
            return frozenset({()}) if records else frozenset()
        return frozenset(tuple(record) for record in records)


@dataclass(frozen=True)
class RewriteDecision:
    """Outcome of rewritability analysis: a plan, or a fallback reason."""

    plan: Optional[RewritePlan]
    reason: Optional[str]
    #: Which pushed route would serve the plan (``"sqlite"`` for the
    #: preference-blind rewriting, ``"prefsql"`` when survivor tables
    #: participate); ``None`` on fallback decisions and for callers that
    #: do not distinguish routes.
    route: Optional[str] = None
    #: Every diagnostic the static analysis produced for the query —
    #: blocking ones first (``reason`` is the first blocker's message),
    #: informational ones (RA001/RA002/RA011) after.
    diagnostics: Tuple[Diagnostic, ...] = ()

    @property
    def pushed(self) -> bool:
        return self.plan is not None

    @property
    def fallback_route(self) -> str:
        """The ``last_route`` string of a fallback on this decision."""
        assert self.reason is not None
        return fallback_route(self.reason)


# ---------------------------------------------------------------------------
# SQL emission
# ---------------------------------------------------------------------------


def conjoin(conditions: Sequence[str]) -> str:
    """AND-join SQL conditions (vacuously true when empty) — shared by
    this compiler and the prefsql survivor builder."""
    return " AND ".join(conditions) if conditions else "1=1"


# Backwards-compatible private alias used throughout this module.
_conjoin = conjoin


def survivor_condition(alias: str, table: str) -> str:
    """Restrict ``alias`` to the rows listed in a survivor side table.

    Survivor tables (see :mod:`repro.prefsql.winnow`) hold one
    ``row_id`` per row whose conflict class belongs to the preferred
    family; the condition plugs straight into the rewriting's alias
    scopes, turning the preference-blind certification into a
    preference-aware one.
    """
    return f"{alias}.rowid IN (SELECT row_id FROM {quote_identifier(table)})"


def _render_body(
    atoms: Sequence,
    schema: DatabaseSchema,
    aliases: Sequence[str],
    kept_comparisons: Sequence[Comparison],
) -> Tuple[List[str], List[Value], Dict[str, str]]:
    """Body conditions for one alias scope.

    Returns ``(conditions, parameters, canonical)`` where ``canonical``
    maps each variable to its representative qualified column.
    """
    conditions: List[str] = []
    parameters: List[Value] = []
    canonical: Dict[str, str] = {}
    for index, atom in enumerate(atoms):
        relation = schema.relation(atom.relation)
        for position, term in enumerate(atom.terms):
            column = "{}.{}".format(
                aliases[index], quote_identifier(relation.attributes[position].name)
            )
            if isinstance(term, Const):
                conditions.append(f"{column} = ?")
                parameters.append(term.value)
            elif term.name in canonical:
                conditions.append(f"{column} = {canonical[term.name]}")
            else:
                canonical[term.name] = column
    for comparison in kept_comparisons:
        operands: List[str] = []
        for term in (comparison.left, comparison.right):
            if isinstance(term, Const):
                operands.append("?")
                parameters.append(term.value)
            else:
                operands.append(canonical[term.name])
        conditions.append(
            f"{operands[0]} {_SQL_OPS[comparison.op]} {operands[1]}"
        )
    return conditions, parameters, canonical


def _empty_plan(
    answer_variables: Tuple[str, ...], why: str
) -> RewritePlan:
    return RewritePlan(
        kind="empty",
        answer_variables=answer_variables,
        certain_sql=None,
        certain_params=(),
        possible_sql=None,
        possible_params=(),
        description=f"statically unsatisfiable: {why}",
    )


def compile_plan(
    classification: Classification,
    schema: DatabaseSchema,
    survivors: Optional[Dict[str, str]] = None,
    resolved: AbstractSet[str] = frozenset(),
) -> RewritePlan:
    """Emit SQL for a classified conjunctive query.

    ``classification`` must be unblocked (see
    :attr:`Classification.blocking`) — the shape, typing and theory
    analysis all happened in :func:`repro.analysis.shapes.classify`;
    this function is pure emission.

    ``survivors`` (preference-aware mode) maps a dirty relation to the
    side table of rows whose conflict class is preferred under the
    active family — the dirty alias scopes and the class certification
    then range over preferred classes only.  Relations listed in
    ``resolved`` have exactly one surviving class per conflict group,
    so the preferred repair restricted to them is unique and the plan
    collapses to a plain (``kind="clean"``) evaluation over the
    survivor rows.
    """
    blocking = classification.blocking
    if blocking:  # defensive: callers gate on classification.blocking
        raise NotRewritable(blocking[0].message)
    shape = classification.shape
    assert shape is not None
    if classification.empty_reason is not None:
        return _empty_plan(
            shape.answer_variables, classification.empty_reason
        )

    if classification.forest is not None:
        # Several dirty atoms in a certified key-join forest: the
        # recursive multi-dirty emission (single-dirty plans keep the
        # historical shape below, bit for bit).
        return _compile_forest(classification, schema, survivors)

    atoms = shape.atoms
    answer_variables = shape.answer_variables
    kept_comparisons = classification.kept_comparisons
    profiles = classification.profiles
    dirty_indexes = classification.dirty_indexes

    outer = [f"t{index}" for index in range(len(atoms))]
    outer_conditions, outer_params, outer_columns = _render_body(
        atoms, schema, outer, kept_comparisons
    )
    survivor_table = None
    if dirty_indexes and survivors:
        survivor_table = survivors.get(atoms[dirty_indexes[0]].relation)
        if survivor_table is not None:
            # Possible answers and the outer certification witness both
            # range over preferred rows only: a witness row outside every
            # preferred class appears in no preferred repair.
            outer_conditions.append(
                survivor_condition(outer[dirty_indexes[0]], survivor_table)
            )
    from_outer = ", ".join(
        f"{quote_identifier(atom.relation)} AS {alias}"
        for atom, alias in zip(atoms, outer)
    )
    if answer_variables:
        select_list = ", ".join(
            "{} AS {}".format(outer_columns[name], quote_identifier(f"a{pos}"))
            for pos, name in enumerate(answer_variables)
        )
        possible_sql = (
            f"SELECT DISTINCT {select_list} FROM {from_outer} "
            f"WHERE {_conjoin(outer_conditions)}"
        )
    else:
        possible_sql = (
            f"SELECT 1 FROM {from_outer} "
            f"WHERE {_conjoin(outer_conditions)} LIMIT 1"
        )

    if not dirty_indexes:
        return RewritePlan(
            kind="clean",
            answer_variables=answer_variables,
            certain_sql=possible_sql,
            certain_params=tuple(outer_params),
            possible_sql=possible_sql,
            possible_params=tuple(outer_params),
            description="all mentioned relations are consistent; certain = "
            "possible = plain evaluation",
        )

    dirty = dirty_indexes[0]
    profile = profiles[atoms[dirty].relation]
    if survivor_table is not None and profile.relation in resolved:
        # One surviving class per group: the preferred repair projected
        # onto this relation is unique, so certain = possible = plain
        # evaluation over the survivor rows (the "clean" run path).
        return RewritePlan(
            kind="clean",
            answer_variables=answer_variables,
            certain_sql=possible_sql,
            certain_params=tuple(outer_params),
            possible_sql=possible_sql,
            possible_params=tuple(outer_params),
            description=(
                f"priority resolves {profile.relation!r} to a single "
                "preferred class per group; certain = possible = plain "
                f"evaluation over survivor table {survivor_table!r}"
            ),
        )
    inner = [f"w{index}" for index in range(len(atoms))]
    inner_conditions, inner_params, inner_columns = _render_body(
        atoms, schema, inner, kept_comparisons
    )
    from_inner = ", ".join(
        f"{quote_identifier(atom.relation)} AS {alias}"
        for atom, alias in zip(atoms, inner)
    )
    same_group_alt = [
        f"g.{quote_identifier(attr)} = {outer[dirty]}.{quote_identifier(attr)}"
        for attr in profile.group
    ]
    if survivor_table is not None:
        # Certification quantifies over *preferred* classes only: an
        # answer is certain as soon as every surviving class of the
        # witness group extends to a witness.
        same_group_alt.append(survivor_condition("g", survivor_table))
    witness_in_group = [
        f"{inner[dirty]}.{quote_identifier(attr)} = "
        f"{outer[dirty]}.{quote_identifier(attr)}"
        for attr in profile.group
    ]
    witness_in_class = [
        f"{inner[dirty]}.{quote_identifier(attr)} = g.{quote_identifier(attr)}"
        for attr in profile.classifier
    ]
    same_answer = [
        f"{inner_columns[name]} = {outer_columns[name]}"
        for name in answer_variables
    ]
    witness_sql = (
        f"SELECT 1 FROM {from_inner} WHERE "
        + _conjoin(
            inner_conditions + witness_in_group + witness_in_class + same_answer
        )
    )
    uncertified_class_sql = (
        f"SELECT 1 FROM {quote_identifier(profile.relation)} AS g "
        f"WHERE {_conjoin(same_group_alt)} AND NOT EXISTS ({witness_sql})"
    )
    certified = (
        f"{_conjoin(outer_conditions)} AND NOT EXISTS ({uncertified_class_sql})"
    )
    if answer_variables:
        certain_sql = (
            f"SELECT DISTINCT {select_list} FROM {from_outer} WHERE {certified}"
        )
    else:
        certain_sql = f"SELECT 1 FROM {from_outer} WHERE {certified} LIMIT 1"
    return RewritePlan(
        kind="dirty",
        answer_variables=answer_variables,
        certain_sql=certain_sql,
        certain_params=tuple(outer_params) + tuple(inner_params),
        possible_sql=possible_sql,
        possible_params=tuple(outer_params),
        description=(
            f"one inconsistent atom over {profile.relation!r} "
            f"(groups on {list(profile.group)}, classes on "
            f"{list(profile.classifier)}); certain answers via doubly "
            "nested NOT EXISTS self-join"
            + (
                f" over preferred classes (survivor table {survivor_table!r})"
                if survivor_table is not None
                else ""
            )
        ),
    )


def _compile_forest(
    classification: Classification,
    schema: DatabaseSchema,
    survivors: Optional[Dict[str, str]] = None,
) -> RewritePlan:
    """Emit SQL for a C_forest classification (several dirty atoms).

    One certification per dirty atom, nested along the oriented trees of
    ``classification.forest``: a dirty atom quantifies together with the
    clean atoms of its region, and each dirty child is certified inside
    the parent's witness scope, correlated only through the child's full
    key (read from the attach atom's witness row).  Root certifications
    key on the outer witness directly, exactly like the single-dirty
    plan.

    With ``survivors``, every dirty alias scope — outer witnesses and
    each certification's class enumeration — ranges over preferred rows
    only; relations whose priority resolves them to one class per group
    simply certify trivially (no special casing, unlike the single-dirty
    collapse).
    """
    shape = classification.shape
    forest = classification.forest
    assert shape is not None and forest is not None
    atoms = shape.atoms
    answer_variables = shape.answer_variables
    profiles = classification.profiles
    survivor_map = survivors or {}

    outer = [f"t{index}" for index in range(len(atoms))]
    outer_conditions, outer_params, outer_columns = _render_body(
        atoms, schema, outer, classification.kept_comparisons
    )
    used_survivors = []
    for index in classification.dirty_indexes:
        table = survivor_map.get(atoms[index].relation)
        if table is not None:
            outer_conditions.append(survivor_condition(outer[index], table))
            used_survivors.append(table)
    from_outer = ", ".join(
        f"{quote_identifier(atom.relation)} AS {alias}"
        for atom, alias in zip(atoms, outer)
    )
    if answer_variables:
        select_list = ", ".join(
            "{} AS {}".format(outer_columns[name], quote_identifier(f"a{pos}"))
            for pos, name in enumerate(answer_variables)
        )
        possible_sql = (
            f"SELECT DISTINCT {select_list} FROM {from_outer} "
            f"WHERE {_conjoin(outer_conditions)}"
        )
    else:
        possible_sql = (
            f"SELECT 1 FROM {from_outer} "
            f"WHERE {_conjoin(outer_conditions)} LIMIT 1"
        )

    params: List[Value] = list(outer_params)
    cert_counter = [0]

    def emit_cert(
        dirty: int,
        key_exprs: Sequence[Tuple[str, Tuple[Value, ...]]],
        is_root: bool,
    ) -> str:
        """Certification condition for one dirty atom.

        ``key_exprs`` gives, per group attribute, the SQL expression of
        the key value in the caller's scope (plus its parameters, which
        are re-appended at every textual use so ``params`` stays in
        placeholder order).

        A *child* certification must also assert its key group is
        non-empty: "every class extends to a witness" is vacuously true
        over an empty group, but no repair of an empty group holds any
        row at all.  Root certifications key on an outer witness row,
        which already inhabits the group.
        """
        number = cert_counter[0]
        cert_counter[0] += 1
        profile = profiles[atoms[dirty].relation]
        g_alias = f"g{number}"
        exists_sql = None
        if not is_root:
            exists_alias = f"e{number}"
            exists_conditions = []
            for attribute, (expr, expr_params) in zip(
                profile.group, key_exprs
            ):
                exists_conditions.append(
                    f"{exists_alias}.{quote_identifier(attribute)} = {expr}"
                )
                params.extend(expr_params)
            exists_sql = (
                f"EXISTS (SELECT 1 FROM "
                f"{quote_identifier(profile.relation)} AS {exists_alias} "
                f"WHERE {_conjoin(exists_conditions)})"
            )
        group_conditions = []
        for attribute, (expr, expr_params) in zip(profile.group, key_exprs):
            group_conditions.append(
                f"{g_alias}.{quote_identifier(attribute)} = {expr}"
            )
            params.extend(expr_params)
        table = survivor_map.get(profile.relation)
        if table is not None:
            # Certification quantifies over *preferred* classes only.
            group_conditions.append(survivor_condition(g_alias, table))

        region = forest.regions[dirty]
        region_aliases = [f"w{number}_{k}" for k in range(len(region))]
        conditions, region_params, canonical = _render_body(
            [atoms[index] for index in region], schema, region_aliases, ()
        )
        params.extend(region_params)
        witness = region_aliases[0]  # the dirty atom leads its region
        for attribute, (expr, expr_params) in zip(profile.group, key_exprs):
            conditions.append(
                f"{witness}.{quote_identifier(attribute)} = {expr}"
            )
            params.extend(expr_params)
        for attribute in profile.classifier:
            conditions.append(
                f"{witness}.{quote_identifier(attribute)} = "
                f"{g_alias}.{quote_identifier(attribute)}"
            )
        for name in answer_variables:
            if name in canonical:
                conditions.append(f"{canonical[name]} = {outer_columns[name]}")
        scope = dict(canonical)
        for name in answer_variables:
            # Answer values are pinned, so reading them from the outer
            # witness is sound even outside the region's atoms.
            scope.setdefault(name, outer_columns[name])
        for comparison in forest.region_comparisons.get(dirty, ()):
            operands: List[str] = []
            for term in (comparison.left, comparison.right):
                if isinstance(term, Const):
                    operands.append("?")
                    params.append(term.value)
                else:
                    operands.append(scope[term.name])
            conditions.append(
                f"{operands[0]} {_SQL_OPS[comparison.op]} {operands[1]}"
            )
        for child, attach in forest.children.get(dirty, ()):
            child_profile = profiles[atoms[child].relation]
            relation = schema.relation(atoms[child].relation)
            positions = {
                attribute.name: position
                for position, attribute in enumerate(relation.attributes)
            }
            child_keys: List[Tuple[str, Tuple[Value, ...]]] = []
            for attribute in child_profile.group:
                term = atoms[child].terms[positions[attribute]]
                if isinstance(term, Const):
                    child_keys.append(("?", (term.value,)))
                else:
                    child_keys.append((scope[term.name], ()))
            conditions.append(emit_cert(child, child_keys, is_root=False))
        from_region = ", ".join(
            f"{quote_identifier(atoms[index].relation)} AS {alias}"
            for index, alias in zip(region, region_aliases)
        )
        witness_sql = (
            f"SELECT 1 FROM {from_region} WHERE {_conjoin(conditions)}"
        )
        certification = (
            f"NOT EXISTS (SELECT 1 FROM "
            f"{quote_identifier(profile.relation)} AS {g_alias} "
            f"WHERE {_conjoin(group_conditions)} "
            f"AND NOT EXISTS ({witness_sql}))"
        )
        if exists_sql is not None:
            return f"({exists_sql} AND {certification})"
        return certification

    certifications = []
    for root in forest.roots:
        profile = profiles[atoms[root].relation]
        certifications.append(
            emit_cert(
                root,
                [
                    (f"{outer[root]}.{quote_identifier(attribute)}", ())
                    for attribute in profile.group
                ],
                is_root=True,
            )
        )
    certified = _conjoin(outer_conditions + certifications)
    if answer_variables:
        certain_sql = (
            f"SELECT DISTINCT {select_list} FROM {from_outer} WHERE {certified}"
        )
    else:
        certain_sql = f"SELECT 1 FROM {from_outer} WHERE {certified} LIMIT 1"
    involved = [atoms[index].relation for index in classification.dirty_indexes]
    return RewritePlan(
        kind="forest",
        answer_variables=answer_variables,
        certain_sql=certain_sql,
        certain_params=tuple(params),
        possible_sql=possible_sql,
        possible_params=tuple(outer_params),
        description=(
            f"{len(involved)} inconsistent atoms over {involved} in a "
            f"C_forest key-join forest ({len(forest.roots)} tree(s)); "
            "certain answers via recursive NOT EXISTS certification "
            "per dirty atom"
            + (
                " over preferred classes (survivor tables "
                f"{sorted(set(used_survivors))})"
                if used_survivors
                else ""
            )
        ),
    )


def analyze_query(
    formula: Formula,
    schema: DatabaseSchema,
    dependencies: Sequence[FunctionalDependency],
    variables: Optional[Sequence[str]] = None,
    survivors: Optional[Dict[str, str]] = None,
    resolved: AbstractSet[str] = frozenset(),
) -> RewriteDecision:
    """Decide whether ``formula`` is rewritable and compile it if so.

    ``formula`` must already be validated against ``schema`` (relation
    names and arities); ``variables`` fixes the answer-column order like
    :meth:`CqaEngine.certain_answers` does.  ``survivors`` and
    ``resolved`` switch :func:`compile_plan` into its preference-aware
    mode (see there).

    The returned decision carries the classifier's diagnostics; on
    fallback, ``reason`` is the first blocker's message — the exact
    string the historical fail-fast analysis raised.
    """
    classification = classify(formula, schema, dependencies, variables)
    blocking = classification.blocking
    if blocking:
        return RewriteDecision(
            None, blocking[0].message, diagnostics=classification.diagnostics
        )
    plan = compile_plan(classification, schema, survivors, resolved)
    return RewriteDecision(
        plan, None, diagnostics=classification.diagnostics
    )
