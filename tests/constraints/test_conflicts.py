"""Unit tests for conflict detection and conflict graphs."""

import pytest

from repro.constraints.conflict_graph import (
    ConflictGraph,
    build_conflict_graph,
    render_conflict_graph,
)
from repro.constraints.conflicts import (
    conflicting_pairs,
    edge,
    find_conflicts,
    is_consistent,
)
from repro.constraints.fd import FunctionalDependency
from repro.datagen.paper_instances import (
    example4_scenario,
    mgr_dependencies,
    mgr_scenario,
)
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema

KV = RelationSchema("R", ["A:number", "B:number"])
KEY = (FunctionalDependency.parse("A -> B", "R"),)


def kv(*pairs):
    return RelationInstance.from_values(KV, pairs)


class TestConflictDetection:
    def test_consistent_instance(self):
        assert is_consistent(kv((1, 1), (2, 2)).rows, KEY)

    def test_inconsistent_instance(self):
        assert not is_consistent(kv((1, 1), (1, 2)).rows, KEY)

    def test_pairs_report_dependency(self):
        pairs = list(conflicting_pairs(kv((1, 1), (1, 2)).rows, KEY))
        assert len(pairs) == 1
        assert pairs[0][2] == KEY[0]

    def test_duplicates_on_rhs_do_not_conflict(self):
        schema = RelationSchema("R", ["A:number", "B:number", "C:number"])
        fds = (FunctionalDependency.parse("A -> B", "R"),)
        instance = RelationInstance.from_values(
            schema, [(1, 1, 1), (1, 1, 2), (1, 2, 3)]
        )
        conflicts = find_conflicts(instance.rows, fds)
        ta, tb, tc = (
            Row(schema, (1, 1, 1)),
            Row(schema, (1, 1, 2)),
            Row(schema, (1, 2, 3)),
        )
        assert edge(ta, tb) not in conflicts
        assert edge(ta, tc) in conflicts
        assert edge(tb, tc) in conflicts

    def test_edge_labels_accumulate_dependencies(self):
        # A pair violating two FDs is labelled with both.
        mgr = mgr_scenario()
        mary_rd, john_rd = mgr.rows["mary_rd"], mgr.rows["john_rd"]
        conflicts = find_conflicts(mgr.instance.rows, mgr.dependencies)
        labels = conflicts[edge(mary_rd, john_rd)]
        assert mgr.dependencies[0] in labels  # Dept -> ...

    def test_mgr_example_has_three_conflicts(self):
        mgr = mgr_scenario()
        conflicts = find_conflicts(mgr.instance.rows, mgr.dependencies)
        assert len(conflicts) == 3


class TestConflictGraph:
    def test_neighbours_and_vicinity(self):
        scenario = mgr_scenario()
        mary_rd = scenario.rows["mary_rd"]
        neighbours = scenario.graph.neighbours(mary_rd)
        assert neighbours == {scenario.rows["john_rd"], scenario.rows["mary_it"]}
        assert scenario.graph.vicinity(mary_rd) == neighbours | {mary_rd}

    def test_isolated_vertices(self):
        graph = build_conflict_graph(kv((1, 1), (1, 2), (5, 5)), KEY)
        isolated = graph.isolated_vertices()
        assert isolated == {Row(KV, (5, 5))}

    def test_degree(self):
        scenario = mgr_scenario()
        assert scenario.graph.degree(scenario.rows["mary_it"]) == 1

    def test_independent_set_checks(self):
        scenario = mgr_scenario()
        r1 = scenario.row_set("mary_rd", "john_pr")
        assert scenario.graph.is_independent(r1)
        assert scenario.graph.is_maximal_independent(r1)
        assert not scenario.graph.is_maximal_independent(
            scenario.row_set("john_pr")
        )
        assert not scenario.graph.is_independent(
            scenario.row_set("mary_rd", "john_rd")
        )

    def test_maximality_rejects_foreign_rows(self):
        scenario = mgr_scenario()
        foreign = Row(scenario.instance.schema, ("Zoe", "HR", 5, 5))
        assert not scenario.graph.is_maximal_independent({foreign})

    def test_induced_subgraph(self):
        scenario = mgr_scenario()
        keep = scenario.row_set("mary_rd", "john_rd", "john_pr")
        sub = scenario.graph.induced(keep)
        assert sub.vertex_count == 3
        assert sub.edge_count == 2  # mary_rd-john_rd and john_rd-john_pr

    def test_connected_components(self):
        graph = build_conflict_graph(kv((1, 1), (1, 2), (2, 1), (2, 2), (9, 9)), KEY)
        components = graph.connected_components()
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2, 2]

    def test_figure1_grid_structure(self):
        scenario = example4_scenario(4)
        assert scenario.graph.vertex_count == 8
        assert scenario.graph.edge_count == 4
        assert len(scenario.graph.connected_components()) == 4

    def test_edge_endpoint_validation(self):
        row_a, row_b = Row(KV, (1, 1)), Row(KV, (1, 2))
        with pytest.raises(ValueError):
            ConflictGraph([row_a], [edge(row_a, row_b)])

    def test_multi_relation_database_conflicts_are_intra_relation(self):
        other = RelationSchema("S", ["A:number", "B:number"])
        db = Database(
            [
                kv((1, 1), (1, 2)),
                RelationInstance.from_values(other, [(1, 3)]),
            ]
        )
        fds = (
            FunctionalDependency.parse("A -> B", "R"),
            FunctionalDependency.parse("A -> B", "S"),
        )
        graph = build_conflict_graph(db, fds)
        assert graph.edge_count == 1  # only within R


class TestRendering:
    def test_render_with_orientation(self):
        scenario = mgr_scenario()
        names = {row: label for label, row in scenario.rows.items()}
        art = render_conflict_graph(scenario.graph, names, scenario.priority.edges)
        assert "mary_rd -> mary_it" in art
        assert "john_pr -- mary_rd" not in art  # that pair never conflicts

    def test_render_conflict_free(self):
        graph = build_conflict_graph(kv((1, 1)), KEY)
        assert "(no conflicts)" in render_conflict_graph(graph)


class TestInducedFastPath:
    """The enumeration hot path relies on cheap induced subgraphs."""

    def test_inducing_full_vertex_set_returns_self(self):
        scenario = mgr_scenario()
        assert scenario.graph.induced(scenario.graph.vertices) is scenario.graph
        # Also when the requested set is a superset after interning.
        foreign = Row(scenario.instance.schema, ("Zoe", "HR", 5, 5))
        assert (
            scenario.graph.induced(scenario.graph.vertices | {foreign})
            is scenario.graph
        )

    def test_induced_subgraph_equals_rebuild(self):
        scenario = mgr_scenario()
        keep = scenario.row_set("mary_rd", "john_rd", "john_pr")
        sub = scenario.graph.induced(keep)
        rebuilt = build_conflict_graph(
            scenario.instance.restrict(keep), scenario.dependencies
        )
        assert sub == rebuilt
        for row in keep:
            assert sub.neighbours(row) == rebuilt.neighbours(row)
        for pair in rebuilt.edges():
            assert sub.edge_labels(pair) == scenario.graph.edge_labels(pair)

    def test_induced_chains_restrict_adjacency(self):
        graph = build_conflict_graph(kv((1, 1), (1, 2), (1, 3)), KEY)
        two = graph.induced(kv((1, 1), (1, 2)))
        one = two.induced(kv((1, 1)))
        assert two.edge_count == 1
        assert one.edge_count == 0
        (survivor,) = one.vertices
        assert one.neighbours(survivor) == frozenset()

    def test_len_and_contains(self):
        graph = build_conflict_graph(kv((1, 1), (1, 2)), KEY)
        assert len(graph) == 2
        row = next(iter(graph.vertices))
        assert row in graph
        assert Row(row.schema, (9, 9)) not in graph
