"""Side-table materialization of conflicts and oriented priority edges.

The preference-aware rewriting needs two facts inside SQLite that the
mirrored data alone does not carry: which row pairs *conflict* (violate
a functional dependency together) and which conflicts the declared
priority *orients*.  Both are materialized as per-connection ``TEMP``
tables so a read-only source file is never mutated and a re-save of the
mirror (which reassigns rowids) simply triggers re-materialization via
the :class:`~repro.backend.mirror.SqliteMirror` refresh hooks:

``_repro_conflicts(relation, a, b)``
    One row per undirected conflict edge, as a ``rowid`` pair with
    ``a < b``, derived by a self-join on the relation's dirty profile
    (same group, different class).

``_repro_edges(relation, winner, loser)``
    One row per declared ``winner ≻ loser`` orientation, as a
    ``rowid`` pair — the flattened dominator index a
    :class:`~repro.priorities.priority.Priority` exports through
    :meth:`~repro.priorities.priority.Priority.dominance_rows`.

Materialization *validates* the declared edges exactly like the
in-memory :class:`~repro.cqa.engine.CqaEngine` does at construction:
edges must relate conflicting rows that exist in the stored instance
(:class:`NonConflictingPriorityError` otherwise) and the declared
digraph must be acyclic (:class:`CyclicPriorityError`).
"""

from __future__ import annotations

import sqlite3
from typing import Dict, Iterable, Optional, Sequence

from repro.backend.rewrite import DirtyProfile
from repro.constraints.fd import FunctionalDependency
from repro.exceptions import (
    CyclicPriorityError,
    NonConflictingPriorityError,
    SchemaError,
)
from repro.priorities.priority import PriorityEdge, digraph_has_cycle
from repro.relational.rows import Row
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.sqlite_io import quote_identifier

#: Temp side table holding undirected conflict edges as rowid pairs.
SIDE_CONFLICTS = "_repro_conflicts"
#: Temp side table holding oriented priority edges as rowid pairs.
SIDE_EDGES = "_repro_edges"


def text_literal(value: str) -> str:
    """A safely quoted SQL string literal (for relation-name tags)."""
    return "'" + value.replace("'", "''") + "'"


def ensure_side_tables(connection: sqlite3.Connection) -> None:
    """Create the (per-connection, temporary) side tables if missing."""
    connection.execute(
        f"CREATE TEMP TABLE IF NOT EXISTS {SIDE_EDGES} ("
        "relation TEXT NOT NULL, winner INTEGER NOT NULL, "
        "loser INTEGER NOT NULL, "
        "PRIMARY KEY (relation, winner, loser))"
    )
    connection.execute(
        f"CREATE TEMP TABLE IF NOT EXISTS {SIDE_CONFLICTS} ("
        "relation TEXT NOT NULL, a INTEGER NOT NULL, b INTEGER NOT NULL)"
    )
    # The survivor queries probe by loser; the fixpoint probes by both
    # conflict endpoints.
    connection.execute(
        f"CREATE INDEX IF NOT EXISTS {SIDE_EDGES}_by_loser "
        f"ON {SIDE_EDGES} (relation, loser)"
    )
    connection.execute(
        f"CREATE INDEX IF NOT EXISTS {SIDE_CONFLICTS}_by_a "
        f"ON {SIDE_CONFLICTS} (relation, a)"
    )
    connection.execute(
        f"CREATE INDEX IF NOT EXISTS {SIDE_CONFLICTS}_by_b "
        f"ON {SIDE_CONFLICTS} (relation, b)"
    )


def materialize_conflicts(
    connection: sqlite3.Connection, profile: DirtyProfile
) -> int:
    """(Re)compute the conflict edges of one profiled relation.

    Two rows conflict iff they agree on the profile's group and differ
    on its classifier; the self-join emits each undirected edge once
    (``a.rowid < b.rowid``).  Returns the number of edges stored.
    """
    relation = quote_identifier(profile.relation)
    tag = text_literal(profile.relation)
    same_group = [
        f"a.{quote_identifier(attr)} = b.{quote_identifier(attr)}"
        for attr in profile.group
    ]
    same_class = [
        f"a.{quote_identifier(attr)} = b.{quote_identifier(attr)}"
        for attr in profile.classifier
    ]
    conditions = ["a.rowid < b.rowid"] + same_group
    conditions.append("NOT (" + " AND ".join(same_class) + ")")
    connection.execute(f"DELETE FROM {SIDE_CONFLICTS} WHERE relation = {tag}")
    cursor = connection.execute(
        f"INSERT INTO {SIDE_CONFLICTS} "
        f"SELECT {tag}, a.rowid, b.rowid FROM {relation} a, {relation} b "
        f"WHERE {' AND '.join(conditions)}"
    )
    return cursor.rowcount


def _conflicting(
    winner: Row, loser: Row, dependencies: Sequence[FunctionalDependency]
) -> bool:
    """Whether the pair violates some dependency (delegates to the FD
    class's pairwise check, the conflict-graph builder's semantics)."""
    for dependency in dependencies:
        try:
            if dependency.conflicting(winner, loser):
                return True
        except SchemaError:
            continue  # dependency names attributes the rows do not carry
    return False


def _rowid_of(
    connection: sqlite3.Connection, schema: RelationSchema, row: Row
) -> Optional[int]:
    """The stored rowid of ``row``, matched by full value tuple."""
    try:
        values = row.project(schema.attribute_names)
    except SchemaError:
        return None
    conditions = " AND ".join(
        f"{quote_identifier(attr)} = ?" for attr in schema.attribute_names
    )
    cursor = connection.execute(
        f"SELECT rowid FROM {quote_identifier(schema.name)} "
        f"WHERE {conditions} LIMIT 1",
        values,
    )
    record = cursor.fetchone()
    return record[0] if record else None


def materialize_edges(
    connection: sqlite3.Connection,
    schema: DatabaseSchema,
    dependencies: Sequence[FunctionalDependency],
    profiles: Dict[str, DirtyProfile],
    edges: Iterable[PriorityEdge],
    append: bool = False,
) -> Dict[str, int]:
    """Validate the declared priority and store its oriented edges.

    Every edge must relate two conflicting rows present in the stored
    instance (matching what ``Priority`` enforces over the in-memory
    conflict graph), and the declared digraph must be acyclic.  Edges
    over relations without a dirty profile (differing FD left-hand
    sides) are validated but *not* materialized — queries mentioning
    those relations are not rewritable anyway.

    ``append`` keeps existing edge rows (incremental maintenance: the
    mirror inserts newly declared orientations without re-deriving the
    whole table); the caller is then responsible for checking
    acyclicity of the *combined* edge set, since only the new edges
    are visible here.

    Validation runs to completion before anything is written, so a
    rejected declaration never leaves the side table half-updated (a
    failed ``extend_priority`` or engine rebuild must not change which
    orientations a later query sees).

    Returns the number of materialized edges per relation.
    """
    edge_list = tuple(edges)
    if digraph_has_cycle(edge_list):
        raise CyclicPriorityError("declared priority contains a cycle")
    rows_to_insert = []
    counts: Dict[str, int] = {}
    for winner, loser in edge_list:
        for endpoint in (winner, loser):
            if not schema.has_relation(endpoint.relation):
                raise NonConflictingPriorityError(
                    "priority references unknown relation "
                    f"{endpoint.relation!r}"
                )
        if not _conflicting(winner, loser, dependencies):
            raise NonConflictingPriorityError(
                f"priority relates non-conflicting tuples {winner!r} "
                f"and {loser!r}"
            )
        relation_schema = schema.relation(winner.relation)
        winner_id = _rowid_of(connection, relation_schema, winner)
        loser_id = _rowid_of(connection, relation_schema, loser)
        if winner_id is None or loser_id is None:
            missing = winner if winner_id is None else loser
            raise NonConflictingPriorityError(
                f"priority references tuple {missing!r} which is not in "
                "the stored instance"
            )
        if winner.relation not in profiles:
            continue
        rows_to_insert.append((winner.relation, winner_id, loser_id))
        counts[winner.relation] = counts.get(winner.relation, 0) + 1
    ensure_side_tables(connection)
    if not append:
        connection.execute(f"DELETE FROM {SIDE_EDGES}")
    connection.executemany(
        f"INSERT OR IGNORE INTO {SIDE_EDGES} VALUES (?, ?, ?)",
        rows_to_insert,
    )
    return counts
