"""Unit tests for the request broker and its answer cache."""

from __future__ import annotations

import threading

import pytest

from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.datagen.generators import (
    CHAIN_FDS,
    GRID_FDS,
    GRID_SCHEMA,
    chain_instance,
    grid_instance,
)
from repro.exceptions import QueryError
from repro.relational.rows import Row
from repro.service.broker import AnswerCache, Request, RequestBroker, _CacheSlot

SELF_JOIN = (
    "EXISTS b1, b2, c1, c2, d1, d2 . "
    "R(a, b1, c1, d1) AND R(a, b2, c2, d2) AND b1 != b2"
)


def _grid_broker(**kwargs) -> RequestBroker:
    broker = RequestBroker(**kwargs)
    broker.register("grid", grid_instance(3, 2), GRID_FDS)
    return broker


class TestRouting:
    def test_rewritable_query_pushes_to_sqlite(self):
        with _grid_broker() as broker:
            result = broker.query("EXISTS y . R(x, y)")
            assert (result.engine, result.route) == ("sqlite", "sqlite")

    def test_conjunctive_fallback_uses_witness_index(self):
        broker = RequestBroker()
        broker.register("chain", chain_instance(5), CHAIN_FDS)
        result = broker.query("EXISTS x, y, z, w . R(x, y, z, w)")
        assert (result.engine, result.route) == ("incremental", "witness-index")
        broker.close()

    def test_non_conjunctive_falls_back_to_indexed_streaming(self):
        broker = RequestBroker()
        broker.register("chain", chain_instance(5), CHAIN_FDS)
        result = broker.query(
            "FORALL x, y, z, w . R(x, y, z, w) IMPLIES x >= 0"
        )
        assert (result.engine, result.route) == ("incremental", "indexed")
        broker.close()

    def test_priority_edges_route_to_prefsql(self):
        instance = grid_instance(2, 2)
        rows = sorted(instance.rows)
        priority = [(rows[0], rows[1])]
        broker = RequestBroker()
        broker.register("grid", instance, GRID_FDS, priority=priority)
        result = broker.query("EXISTS y . R(x, y)")
        assert (result.engine, result.route) == ("prefsql", "prefsql")
        reference = CqaEngine(instance, GRID_FDS, priority).certain_answers(
            "EXISTS y . R(x, y)"
        )
        assert result.outcome.certain == reference.certain
        assert result.outcome.possible == reference.possible
        broker.close()

    def test_prefsql_pushdown_can_be_disabled(self):
        instance = grid_instance(2, 2)
        rows = sorted(instance.rows)
        broker = RequestBroker()
        broker.register(
            "grid", instance, GRID_FDS, priority=[(rows[0], rows[1])],
            prefsql_pushdown=False,
        )
        result = broker.query("EXISTS y . R(x, y)")
        assert result.engine == "incremental"
        broker.close()

    def test_answers_match_reference_engine(self):
        with _grid_broker() as broker:
            result = broker.query("EXISTS y . R(x, y)")
            reference = CqaEngine(grid_instance(3, 2), GRID_FDS).certain_answers(
                "EXISTS y . R(x, y)"
            )
            assert result.outcome.certain == reference.certain
            assert result.outcome.possible == reference.possible


class TestBatching:
    def test_duplicates_within_a_batch_compute_once(self):
        with _grid_broker() as broker:
            requests = [Request("EXISTS y . R(x, y)") for _ in range(5)]
            results = broker.submit(requests)
            assert [r.shared for r in results] == [False, True, True, True, True]
            assert broker.deduplicated == 4
            assert all(
                r.outcome == results[0].outcome and r.route == results[0].route
                for r in results
            )

    def test_results_keep_submission_order_under_priorities(self):
        with _grid_broker() as broker:
            results = broker.submit(
                [
                    Request("EXISTS y . R(x, y)", tag="low", priority=0),
                    Request("EXISTS x . R(x, y)", tag="high", priority=9),
                ]
            )
            assert [r.request.tag for r in results] == ["low", "high"]

    def test_higher_priority_request_computes_the_shared_work(self):
        """The priority-9 duplicate is served first; the dup is shared."""
        with _grid_broker() as broker:
            results = broker.submit(
                [
                    Request("EXISTS y . R(x, y)", tag="late", priority=0),
                    Request("EXISTS y . R(x, y)", tag="first", priority=9),
                ]
            )
            by_tag = {r.request.tag: r for r in results}
            assert by_tag["first"].shared is False
            assert by_tag["late"].shared is True

    def test_distinct_variables_are_distinct_work(self):
        with _grid_broker() as broker:
            results = broker.submit(
                [
                    Request("EXISTS y . R(x, y)"),
                    Request("R(x, y)", variables=("x", "y")),
                ]
            )
            assert not any(r.shared for r in results)


class TestAnswerCaching:
    def test_repeat_batches_hit_the_cache_with_same_route(self):
        with _grid_broker() as broker:
            first = broker.query("EXISTS y . R(x, y)")
            second = broker.query("EXISTS y . R(x, y)")
            assert not first.cached and second.cached
            assert second.route == first.route
            assert second.outcome == first.outcome

    def test_update_invalidates_dependent_entries(self):
        with _grid_broker() as broker:
            broker.query("EXISTS y . R(x, y)")
            broker.insert(Row(GRID_SCHEMA, [7, 7]), "grid")
            result = broker.query("EXISTS y . R(x, y)")
            assert not result.cached
            assert (7,) in result.outcome.certain

    def test_reverted_state_hits_content_keyed_entries_again(self):
        with _grid_broker() as broker:
            row = Row(GRID_SCHEMA, [7, 7])
            baseline = broker.query("EXISTS y . R(x, y)")
            broker.insert(row, "grid")
            broker.query("EXISTS y . R(x, y)")
            broker.delete(row, "grid")
            revisited = broker.query("EXISTS y . R(x, y)")
            assert revisited.outcome == baseline.outcome

    def test_component_wise_invalidation_spares_other_databases(self):
        broker = RequestBroker()
        broker.register("a", grid_instance(2, 2), GRID_FDS)
        broker.register("b", grid_instance(2, 2), GRID_FDS)
        broker.query("EXISTS y . R(x, y)", database="a")
        broker.query("EXISTS y . R(x, y)", database="b")
        broker.insert(Row(GRID_SCHEMA, [9, 9]), "a")
        assert broker.query("EXISTS y . R(x, y)", database="b").cached
        assert not broker.query("EXISTS y . R(x, y)", database="a").cached
        broker.close()

    def test_entries_of_unmentioned_relations_survive_update_cycles(self):
        """Component-wise dependencies: an S-only entry outlives R churn.

        Lookups are content-keyed, so while R is perturbed the S entry
        cannot hit (the instance fingerprint changed) — but it is *not*
        evicted, and the moment the R perturbation is reverted the
        original state's key matches the retained entry again.
        """
        from repro.constraints.fd import FunctionalDependency
        from repro.relational.database import Database
        from repro.relational.instance import RelationInstance
        from repro.relational.schema import RelationSchema

        r_schema = RelationSchema("R", ["A:number", "B:number"])
        s_schema = RelationSchema("S", ["C:number", "D:number"])
        fds = [
            FunctionalDependency.parse("A -> B", "R"),
            FunctionalDependency.parse("C -> D", "S"),
        ]
        database = Database(
            [
                RelationInstance.from_values(r_schema, [(0, 0), (0, 1)]),
                RelationInstance.from_values(s_schema, [(5, 5), (5, 6)]),
            ]
        )
        broker = RequestBroker()
        broker.register("db", database, fds)
        broker.query("EXISTS d . S(c, d)")
        perturbation = Row(r_schema, [9, 9])
        broker.insert(perturbation, "db")
        broker.delete(perturbation, "db")
        assert broker.query("EXISTS d . S(c, d)").cached
        # ... while an S update does evict the S entry for good.
        broker.insert(Row(s_schema, [7, 7]), "db")
        assert broker.cache.stats()["entries"] == 0 or not broker.query(
            "EXISTS d . S(c, d)"
        ).cached
        broker.close()

    def test_prefer_drops_the_databases_entries(self):
        instance = grid_instance(2, 2)
        rows = sorted(instance.rows)
        winner, loser = rows[0], rows[1]
        broker = RequestBroker()
        broker.register("grid", instance, GRID_FDS, family=Family.GLOBAL)
        broker.query("EXISTS y . R(x, y)")
        broker.prefer(winner, loser, "grid")
        assert not broker.query("EXISTS y . R(x, y)").cached
        broker.close()


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with _grid_broker() as broker:
            with pytest.raises(QueryError):
                broker.register("grid", grid_instance(2, 2), GRID_FDS)

    def test_unknown_database_rejected(self):
        with _grid_broker() as broker:
            with pytest.raises(QueryError):
                broker.query("EXISTS y . R(x, y)", database="nope")

    def test_empty_broker_rejects_queries(self):
        broker = RequestBroker()
        with pytest.raises(QueryError):
            broker.query("EXISTS y . R(x, y)")

    def test_stats_shape(self):
        with _grid_broker() as broker:
            broker.query("EXISTS y . R(x, y)")
            stats = broker.stats()
            assert stats["databases"]["grid"]["queries"] == 1
            assert stats["answer_cache"]["entries"] == 1


class TestAnswerCache:
    def test_bounded_fifo_eviction(self):
        cache = AnswerCache(max_entries=2)
        for index in range(3):
            cache.put(
                ("db", index), _CacheSlot(None, "e", "r", frozenset())
            )
        assert len(cache) == 2
        assert cache.get(("db", 0)) is None
        assert cache.get(("db", 2)) is not None
        assert cache.evicted == 1

    def test_invalidate_components_is_selective(self):
        row_a = Row(GRID_SCHEMA, [1, 1])
        row_b = Row(GRID_SCHEMA, [2, 2])
        cache = AnswerCache()
        cache.put(
            ("db", "qa"),
            _CacheSlot(None, "e", "r", frozenset([frozenset([row_a])])),
        )
        cache.put(
            ("db", "qb"),
            _CacheSlot(None, "e", "r", frozenset([frozenset([row_b])])),
        )
        assert cache.invalidate_components("db", [row_a]) == 1
        assert cache.get(("db", "qa")) is None
        assert cache.get(("db", "qb")) is not None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            AnswerCache(0)


class TestThreadSafety:
    """The satellite's two-thread stress: get-or-create races eviction."""

    def test_answer_cache_two_thread_stress(self):
        cache = AnswerCache(max_entries=8)
        errors = []

        def hammer(worker: int) -> None:
            try:
                for step in range(600):
                    key = ("db", (worker + step) % 24)
                    slot = cache.get(key)
                    if slot is None:
                        cache.put(
                            key, _CacheSlot(None, "e", "r", frozenset())
                        )
                    cache.invalidate_components("db", [])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 8

    def test_context_cache_two_thread_stress(self):
        from repro.query.evaluator import ContextCache

        instance = grid_instance(3, 2)
        row_sets = [
            frozenset(list(instance.rows)[: size + 1]) for size in range(5)
        ]
        cache = ContextCache(max_entries=2)
        errors = []

        def hammer(worker: int) -> None:
            try:
                for step in range(600):
                    rows = row_sets[(worker + step) % len(row_sets)]
                    context = cache.context_for(rows, frozenset({step % 3}))
                    assert context.relations is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 2

    def test_concurrent_broker_submissions(self):
        with _grid_broker() as broker:
            errors = []

            def client(worker: int) -> None:
                try:
                    for _ in range(12):
                        result = broker.query("EXISTS y . R(x, y)")
                        assert result.outcome.certain
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(worker,))
                for worker in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
