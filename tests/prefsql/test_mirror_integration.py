"""SqliteMirror integration: refresh hooks and incremental edges."""

from __future__ import annotations

import pytest

from repro.backend.mirror import SqliteMirror
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.exceptions import CyclicPriorityError
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema

SCHEMA = RelationSchema("R", ["K", "A:number", "B"])
FDS = [FunctionalDependency.parse("K -> A", "R")]

ROWS = [("k0", 0, "x"), ("k0", 1, "y"), ("k0", 2, "z"), ("c0", 9, "q")]


def _row(*values) -> Row:
    return Row(SCHEMA, values)


def _database(rows=ROWS) -> Database:
    return Database([RelationInstance.from_values(SCHEMA, rows)])


EDGE_A = (_row("k0", 1, "y"), _row("k0", 0, "x"))
EDGE_B = (_row("k0", 2, "z"), _row("k0", 1, "y"))


class TestRefreshHooks:
    def test_custom_hook_runs_on_every_refresh(self):
        observed = []
        with SqliteMirror(FDS) as mirror:
            mirror.add_refresh_hook(lambda connection: observed.append(1))
            mirror.engine_for(_database())
            assert observed == [1]
            mirror.engine_for(_database())  # clean: no refresh
            assert observed == [1]
            mirror.mark_dirty()
            mirror.engine_for(_database())
            assert observed == [1, 1]

    def test_refresh_invalidates_the_pref_engine(self):
        with SqliteMirror(FDS) as mirror:
            first = mirror.pref_engine_for(_database(), [EDGE_A])
            mirror.mark_dirty()
            second = mirror.pref_engine_for(_database(), [EDGE_A])
            assert second is not first  # rowids were reassigned


class TestIncrementalEdges:
    def test_growing_priority_reuses_the_engine(self):
        with SqliteMirror(FDS) as mirror:
            first = mirror.pref_engine_for(_database(), [EDGE_A])
            again = mirror.pref_engine_for(_database(), [EDGE_A, EDGE_B])
            assert again is first  # side tables extended in place
            assert len(again.priority_edges) == 2

    def test_extended_engine_answers_like_memory(self):
        query = "EXISTS b . R(x, y, b)"
        with SqliteMirror(FDS, Family.COMMON) as mirror:
            engine = mirror.pref_engine_for(_database(), [EDGE_A])
            engine.certain_answers(query)  # warm caches, then extend
            engine = mirror.pref_engine_for(_database(), [EDGE_A, EDGE_B])
            result = engine.certain_answers(query, family=Family.COMMON)
            assert engine.last_route == "prefsql"
        reference = CqaEngine(
            _database(), FDS, [EDGE_A, EDGE_B], Family.COMMON
        ).certain_answers(query)
        assert result.certain == reference.certain
        assert result.possible == reference.possible

    def test_shrunk_priority_rebuilds(self):
        with SqliteMirror(FDS) as mirror:
            first = mirror.pref_engine_for(_database(), [EDGE_A, EDGE_B])
            second = mirror.pref_engine_for(_database(), [EDGE_A])
            assert second is not first
            assert len(second.priority_edges) == 1

    def test_reused_engine_adopts_the_requested_family(self):
        with SqliteMirror(FDS) as mirror:
            first = mirror.pref_engine_for(
                _database(), [EDGE_A], family=Family.GLOBAL
            )
            assert first.family is Family.GLOBAL
            again = mirror.pref_engine_for(
                _database(), [EDGE_A], family=Family.LOCAL
            )
            assert again is first
            assert again.family is Family.LOCAL
            # Omitting family reverts to the mirror's default (REP).
            default = mirror.pref_engine_for(_database(), [EDGE_A])
            assert default is first
            assert default.family is mirror.family

    def test_cyclic_extension_is_rejected(self):
        reverse = (EDGE_A[1], EDGE_A[0])
        with SqliteMirror(FDS) as mirror:
            engine = mirror.pref_engine_for(_database(), [EDGE_A])
            with pytest.raises(CyclicPriorityError):
                engine.extend_priority([reverse])
            # The failed extension must not have half-applied.
            assert len(engine.priority_edges) == 1

    def test_failed_extension_leaves_no_partial_edges(self):
        """A batch whose second edge is invalid must change nothing:
        validation completes before any side-table write, otherwise a
        later query silently answers under a half-applied priority."""
        from repro.exceptions import NonConflictingPriorityError

        ghost = (_row("k0", 2, "z"), _row("k0", 0, "ghost"))
        query = "EXISTS b . R(x, y, b)"
        with SqliteMirror(FDS, Family.COMMON) as mirror:
            engine = mirror.pref_engine_for(_database(), [EDGE_A])
            engine.certain_answers(query)  # warm caches pre-failure
            with pytest.raises(NonConflictingPriorityError):
                engine.extend_priority([EDGE_B, ghost])
            assert len(engine.priority_edges) == 1
            # A family not queried before forces a fresh survivor build
            # from the side table — which must still hold EDGE_A only.
            after = engine.certain_answers(
                query, family=Family.SEMI_GLOBAL
            )
            reference = CqaEngine(
                _database(), FDS, [EDGE_A], Family.SEMI_GLOBAL
            ).certain_answers(query)
            assert after.certain == reference.certain
            assert after.possible == reference.possible
